//! The differential grouping operator, sharded by key.
//!
//! `reduce` applies a function to the accumulated multiset of values for
//! each key and maintains the function's output incrementally: whenever
//! a key's input changes at time `t`, the operator recomputes the
//! correct output *as of* `t` and emits the difference against what its
//! output history already accumulates to at `t`.
//!
//! With partially ordered times the subtlety is that a change at `t1`
//! can also invalidate the output at `t1 ∨ t2` for every other time `t2`
//! in the key's history (the classic differential-dataflow "interesting
//! times" rule). In the two-dimensional `(epoch, iteration)` lattice the
//! join-closure of a set of times equals its set of pairwise joins, so
//! it suffices to enqueue `t ∨ u` for every recorded `u` whenever a new
//! input time `t` arrives. Pending times are processed in lexicographic
//! order (a linear extension of the partial order) once the scheduler
//! reaches them.
//!
//! All per-key state — both traces and the pending-times set — is
//! partitioned into [`NUM_SHARDS`] key shards, so a step can run the
//! shards as independent pool tasks (see `graph::run_shards`). Shard
//! stagings are merged by sorting on `(time, data)`: the serial operator
//! emits in exactly that order (pending times drain in `(t, k)` order
//! and `value_delta` yields values in ascending order, with at most one
//! record per `(t, k, w)`), so the merged batch is byte-identical to the
//! single-shard result at any worker count.

use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;

use crate::delta::{consolidate, consolidate_values, value_delta, Data, Delta, Diff};
use crate::error::EvalError;
use crate::graph::{run_shards, Fanout, OpNode, Queue, Scheduler, ShardMode, UNBOUND};
use crate::time::Time;
use crate::trace::KeyTrace;
use crate::util::{shard_of, NUM_SHARDS};

/// The user reduction: receives the key and its consolidated, sorted,
/// positive-multiplicity input values, returns output values with
/// multiplicities. `Fn + Send + Sync` because shards evaluate it
/// concurrently from pool workers.
pub(crate) type ReduceFn<K, V, W> = dyn Fn(&K, &[(V, Diff)]) -> Vec<(W, Diff)> + Send + Sync;

/// Shared handle to a [`ReduceFn`], cloned into each shard dispatch.
pub(crate) type ReduceLogic<K, V, W> = Arc<ReduceFn<K, V, W>>;

/// One key shard: input/output traces and pending interesting times for
/// the keys that hash here, plus the exchange inbox the routing phase
/// fills each step.
struct ReduceShard<K: Data, V: Data, W: Data> {
    in_trace: KeyTrace<K, V>,
    out_trace: KeyTrace<K, W>,
    /// Times (per key) at which the output may need correction, not yet
    /// processed. Lexicographic order on `Time` linearizes the partial
    /// order, so iterating the set front-to-back is causally safe.
    pending: BTreeSet<(Time, K)>,
    /// Scratch buffer for per-key recorded-times lookups, reused across
    /// keys and steps to avoid an allocation per batch record.
    times_scratch: Vec<Time>,
    batch: Vec<Delta<(K, V)>>,
}

impl<K: Data, V: Data, W: Data> ReduceShard<K, V, W> {
    fn new() -> Self {
        ReduceShard {
            in_trace: KeyTrace::new(),
            out_trace: KeyTrace::new(),
            pending: BTreeSet::new(),
            times_scratch: Vec::new(),
            batch: Vec::new(),
        }
    }

    /// The serial reduce algorithm, restricted to this shard's keys.
    /// Returns the staged output (in `(t, k, w)` order) and the number
    /// of pending times processed (work measure).
    fn step(
        &mut self,
        name: &'static str,
        now: Time,
        logic: &ReduceFn<K, V, W>,
    ) -> (Vec<Delta<(K, W)>>, u64) {
        let batch = std::mem::take(&mut self.batch);

        // Record the new differences and enqueue interesting times:
        // every new time, plus its join with every time already in the
        // key's history. The routed batch preserves the globally
        // consolidated `((k, v), t)` order, so adjacent dedup is valid.
        let mut new_times: Vec<(K, Time)> = Vec::new();
        for ((k, _), t, _) in &batch {
            debug_assert!(t.leq(now), "{name}: record at {t:?} arrived after {now:?}");
            if new_times.last().map(|(lk, lt)| lk != k || lt != t).unwrap_or(true) {
                new_times.push((k.clone(), *t));
            }
        }
        for ((k, v), t, r) in batch {
            self.in_trace.push(k, v, t, r);
        }
        new_times.sort();
        new_times.dedup();
        let mut times_scratch = std::mem::take(&mut self.times_scratch);
        for (k, t) in new_times {
            self.in_trace.times_into(&k, &mut times_scratch);
            for &u in &times_scratch {
                let j = t.join(u);
                self.pending.insert((j, k.clone()));
            }
            self.pending.insert((t, k));
        }
        self.times_scratch = times_scratch;

        // Process every pending time that is now complete. Pending times
        // always lie in the current epoch (joins cannot exceed the max
        // epoch of their arguments), so the lexicographic minimum is
        // processable iff its iteration component has been reached.
        let mut staging: Vec<Delta<(K, W)>> = Vec::new();
        let mut processed = 0u64;
        while let Some((t, k)) = self.pending.iter().next().cloned() {
            if !t.leq(now) {
                break;
            }
            self.pending.remove(&(t, k.clone()));
            processed += 1;
            let in_acc = self.in_trace.accumulate(&k, t);
            debug_assert!(
                in_acc.iter().all(|(_, r)| *r > 0),
                "{name}: negative input multiplicity for {k:?} at {t:?}: {in_acc:?}"
            );
            let mut correct = if in_acc.is_empty() { Vec::new() } else { logic(&k, &in_acc) };
            consolidate_values(&mut correct);
            let out_acc = self.out_trace.accumulate(&k, t);
            let delta = value_delta(&correct, &out_acc);
            for (w, r) in delta {
                self.out_trace.push(k.clone(), w.clone(), t, r);
                staging.push(((k.clone(), w), t, r));
            }
        }
        (staging, processed)
    }
}

pub(crate) struct ReduceNode<K: Data, V: Data, W: Data> {
    name: &'static str,
    slot: usize,
    sched: Option<Rc<Scheduler>>,
    input: Queue<(K, V)>,
    shards: Vec<ReduceShard<K, V, W>>,
    logic: ReduceLogic<K, V, W>,
    output: Fanout<(K, W)>,
    work: u64,
    shard_dispatched: u64,
    shard_inlined: u64,
}

impl<K: Data, V: Data, W: Data> ReduceNode<K, V, W> {
    pub fn new(
        name: &'static str,
        input: Queue<(K, V)>,
        output: Fanout<(K, W)>,
        logic: ReduceLogic<K, V, W>,
    ) -> Self {
        ReduceNode {
            name,
            slot: UNBOUND,
            sched: None,
            input,
            shards: (0..NUM_SHARDS).map(|_| ReduceShard::new()).collect(),
            logic,
            output,
            work: 0,
            shard_dispatched: 0,
            shard_inlined: 0,
        }
    }
}

impl<K: Data, V: Data, W: Data> OpNode for ReduceNode<K, V, W> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.slot = slot;
        self.sched = Some(Rc::clone(sched));
        self.input.bind(slot, sched);
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let mut batch = self.input.take_batch();
        if batch.is_empty() && !self.has_internal_work() {
            return Ok(());
        }
        consolidate(&mut batch);
        let records = batch.len() + self.shards.iter().map(|s| s.pending.len()).sum::<usize>();
        self.work += batch.len() as u64;

        // Exchange: route each delta to the shard owning its key.
        for d in batch {
            let s = shard_of(&d.0 .0);
            self.shards[s].batch.push(d);
        }

        let name = self.name;
        let logic = Arc::clone(&self.logic);
        let (results, mode) = run_shards(self.sched.as_ref(), records, &mut self.shards, |i, sh| {
            rc_faults::fire_shard(rc_faults::ShardSite::Dataflow, i);
            sh.step(name, now, &*logic)
        });
        match mode {
            ShardMode::Dispatched => self.shard_dispatched += 1,
            ShardMode::Inlined => self.shard_inlined += 1,
            ShardMode::Serial => {}
        }

        // Merge by sorting on (time, data): exactly the serial emission
        // order, and unique per (t, k, w), so the result is independent
        // of sharding.
        let mut staging: Vec<Delta<(K, W)>> = Vec::new();
        for (shard_staging, processed) in results {
            self.work += processed;
            staging.extend(shard_staging);
        }
        staging.sort_unstable_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
        self.output.emit(staging);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.input.is_empty()
    }

    fn has_internal_work(&self) -> bool {
        self.shards.iter().any(|s| !s.pending.is_empty())
    }

    fn pending_iter(&self, epoch: u64) -> Option<u32> {
        self.shards
            .iter()
            .flat_map(|s| s.pending.iter())
            .filter(|(t, _)| t.epoch == epoch)
            .map(|(t, _)| t.iter)
            .min()
    }

    fn end_epoch(&mut self, epoch: u64) {
        debug_assert!(
            self.shards.iter().all(|s| s.pending.iter().all(|(t, _)| t.epoch > epoch)),
            "{}: unprocessed interesting times at epoch {epoch} end",
            self.name
        );
        debug_assert!(!self.has_queued(), "{}: input left queued at epoch end", self.name);
    }

    fn compact(&mut self, frontier: u64) {
        for s in &mut self.shards {
            debug_assert!(s.pending.is_empty(), "{}: compacting with pending times", self.name);
            s.in_trace.compact(frontier);
            s.out_trace.compact(frontier);
        }
    }

    fn trace_sizes(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(b, r), s| {
            (
                b + s.in_trace.base_len() + s.out_trace.base_len(),
                r + s.in_trace.recent_len() + s.out_trace.recent_len(),
            )
        })
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn collect_stats(&self, acc: &mut std::collections::BTreeMap<&'static str, crate::graph::OpStats>) {
        let e = acc.entry(self.name()).or_default();
        e.work += self.work;
        e.queued += self.input.len();
        for (i, s) in self.shards.iter().enumerate() {
            let records = s.in_trace.len() + s.out_trace.len();
            e.trace_records += records;
            e.trace_base_records += s.in_trace.base_len() + s.out_trace.base_len();
            e.trace_recent_records += s.in_trace.recent_len() + s.out_trace.recent_len();
            e.pending += s.pending.len();
            e.shard_records[i] += records;
        }
        e.shard_dispatched += self.shard_dispatched;
        e.shard_inlined += self.shard_inlined;
    }

    fn name(&self) -> &'static str {
        self.name
    }
}
