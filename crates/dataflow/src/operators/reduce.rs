//! The differential grouping operator.
//!
//! `reduce` applies a function to the accumulated multiset of values for
//! each key and maintains the function's output incrementally: whenever
//! a key's input changes at time `t`, the operator recomputes the
//! correct output *as of* `t` and emits the difference against what its
//! output history already accumulates to at `t`.
//!
//! With partially ordered times the subtlety is that a change at `t1`
//! can also invalidate the output at `t1 ∨ t2` for every other time `t2`
//! in the key's history (the classic differential-dataflow "interesting
//! times" rule). In the two-dimensional `(epoch, iteration)` lattice the
//! join-closure of a set of times equals its set of pairwise joins, so
//! it suffices to enqueue `t ∨ u` for every recorded `u` whenever a new
//! input time `t` arrives. Pending times are processed in lexicographic
//! order (a linear extension of the partial order) once the scheduler
//! reaches them.

use std::collections::BTreeSet;
use std::rc::Rc;

use crate::delta::{consolidate, consolidate_values, value_delta, Data, Delta, Diff};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue, Scheduler, UNBOUND};
use crate::time::Time;
use crate::trace::KeyTrace;

/// The user reduction: receives the key and its consolidated, sorted,
/// positive-multiplicity input values, returns output values with
/// multiplicities.
pub(crate) type ReduceLogic<K, V, W> = Box<dyn FnMut(&K, &[(V, Diff)]) -> Vec<(W, Diff)>>;

pub(crate) struct ReduceNode<K: Data, V: Data, W: Data> {
    name: &'static str,
    slot: usize,
    input: Queue<(K, V)>,
    in_trace: KeyTrace<K, V>,
    out_trace: KeyTrace<K, W>,
    /// Times (per key) at which the output may need correction, not yet
    /// processed. Lexicographic order on `Time` linearizes the partial
    /// order, so iterating the set front-to-back is causally safe.
    pending: BTreeSet<(Time, K)>,
    /// Scratch buffer for per-key recorded-times lookups, reused across
    /// keys and steps to avoid an allocation per batch record.
    times_scratch: Vec<Time>,
    logic: ReduceLogic<K, V, W>,
    output: Fanout<(K, W)>,
    work: u64,
}

impl<K: Data, V: Data, W: Data> ReduceNode<K, V, W> {
    pub fn new(
        name: &'static str,
        input: Queue<(K, V)>,
        output: Fanout<(K, W)>,
        logic: ReduceLogic<K, V, W>,
    ) -> Self {
        ReduceNode {
            name,
            slot: UNBOUND,
            input,
            in_trace: KeyTrace::new(),
            out_trace: KeyTrace::new(),
            pending: BTreeSet::new(),
            times_scratch: Vec::new(),
            logic,
            output,
            work: 0,
        }
    }
}

impl<K: Data, V: Data, W: Data> OpNode for ReduceNode<K, V, W> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.slot = slot;
        self.input.bind(slot, sched);
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let mut batch = self.input.take_batch();
        if batch.is_empty() && self.pending.is_empty() {
            return Ok(());
        }
        consolidate(&mut batch);
        self.work += batch.len() as u64;

        // Record the new differences and enqueue interesting times:
        // every new time, plus its join with every time already in the
        // key's history.
        let mut new_times: Vec<(K, Time)> = Vec::new();
        for ((k, _), t, _) in &batch {
            debug_assert!(t.leq(now), "{}: record at {t:?} arrived after {now:?}", self.name);
            if new_times.last().map(|(lk, lt)| lk != k || lt != t).unwrap_or(true) {
                new_times.push((k.clone(), *t));
            }
        }
        for ((k, v), t, r) in batch {
            self.in_trace.push(k, v, t, r);
        }
        new_times.sort();
        new_times.dedup();
        let mut times_scratch = std::mem::take(&mut self.times_scratch);
        for (k, t) in new_times {
            self.in_trace.times_into(&k, &mut times_scratch);
            for &u in &times_scratch {
                let j = t.join(u);
                self.pending.insert((j, k.clone()));
            }
            self.pending.insert((t, k));
        }
        self.times_scratch = times_scratch;

        // Process every pending time that is now complete. Pending times
        // always lie in the current epoch (joins cannot exceed the max
        // epoch of their arguments), so the lexicographic minimum is
        // processable iff its iteration component has been reached.
        let mut staging: Vec<Delta<(K, W)>> = Vec::new();
        while let Some((t, k)) = self.pending.iter().next().cloned() {
            if !t.leq(now) {
                break;
            }
            self.pending.remove(&(t, k.clone()));
            self.work += 1;
            let in_acc = self.in_trace.accumulate(&k, t);
            debug_assert!(
                in_acc.iter().all(|(_, r)| *r > 0),
                "{}: negative input multiplicity for {k:?} at {t:?}: {in_acc:?}",
                self.name
            );
            let mut correct =
                if in_acc.is_empty() { Vec::new() } else { (self.logic)(&k, &in_acc) };
            consolidate_values(&mut correct);
            let out_acc = self.out_trace.accumulate(&k, t);
            let delta = value_delta(&correct, &out_acc);
            for (w, r) in delta {
                self.out_trace.push(k.clone(), w.clone(), t, r);
                staging.push(((k.clone(), w), t, r));
            }
        }
        self.output.emit(staging);
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.input.is_empty()
    }

    fn has_internal_work(&self) -> bool {
        !self.pending.is_empty()
    }

    fn pending_iter(&self, epoch: u64) -> Option<u32> {
        self.pending.iter().filter(|(t, _)| t.epoch == epoch).map(|(t, _)| t.iter).min()
    }

    fn end_epoch(&mut self, epoch: u64) {
        debug_assert!(
            self.pending.iter().all(|(t, _)| t.epoch > epoch),
            "{}: unprocessed interesting times at epoch {epoch} end: {:?}",
            self.name,
            self.pending.iter().take(4).collect::<Vec<_>>()
        );
        debug_assert!(!self.has_queued(), "{}: input left queued at epoch end", self.name);
    }

    fn compact(&mut self, frontier: u64) {
        debug_assert!(self.pending.is_empty(), "{}: compacting with pending times", self.name);
        self.in_trace.compact(frontier);
        self.out_trace.compact(frontier);
    }

    fn work(&self) -> u64 {
        self.work
    }

    fn collect_stats(&self, acc: &mut std::collections::BTreeMap<&'static str, crate::graph::OpStats>) {
        let e = acc.entry(self.name()).or_default();
        e.work += self.work;
        e.queued += self.input.len();
        e.trace_records += self.in_trace.len() + self.out_trace.len();
        e.trace_base_records += self.in_trace.base_len() + self.out_trace.base_len();
        e.trace_recent_records += self.in_trace.recent_len() + self.out_trace.recent_len();
        e.pending += self.pending.len();
    }

    fn name(&self) -> &'static str {
        self.name
    }
}
