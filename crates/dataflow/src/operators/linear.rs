//! The generic linear (per-record) operator.
//!
//! `map`, `flat_map`, `filter`, `negate` and `inspect` are all instances
//! of one node type: a function from an input record to zero or more
//! output records, applied difference-by-difference. Linear operators
//! keep no state, so they are incremental for free.

use std::rc::Rc;

use crate::delta::{consolidate, Data, Delta, Diff};
use crate::error::EvalError;
use crate::graph::{Fanout, OpNode, Queue, Scheduler, UNBOUND};
use crate::time::Time;

/// Per-record transformation: receives `(data, time, diff)` and appends
/// any output differences.
pub(crate) type LinearLogic<D, E> = Box<dyn FnMut(D, Time, Diff, &mut Vec<Delta<E>>)>;

pub(crate) struct LinearNode<D: Data, E: Data> {
    name: &'static str,
    slot: usize,
    input: Queue<D>,
    output: Fanout<E>,
    logic: LinearLogic<D, E>,
    staging: Vec<Delta<E>>,
    work: u64,
}

impl<D: Data, E: Data> LinearNode<D, E> {
    pub fn new(
        name: &'static str,
        input: Queue<D>,
        output: Fanout<E>,
        logic: LinearLogic<D, E>,
    ) -> Self {
        LinearNode { name, slot: UNBOUND, input, output, logic, staging: Vec::new(), work: 0 }
    }
}

impl<D: Data, E: Data> OpNode for LinearNode<D, E> {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        self.slot = slot;
        self.input.bind(slot, sched);
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        let batch = self.input.take_batch();
        if batch.is_empty() {
            return Ok(());
        }
        self.work += batch.len() as u64;
        for (d, t, r) in batch {
            debug_assert!(t.leq(now), "{}: record at {t:?} arrived after {now:?}", self.name);
            (self.logic)(d, t, r, &mut self.staging);
        }
        consolidate(&mut self.staging);
        self.output.emit(std::mem::take(&mut self.staging));
        Ok(())
    }

    fn has_queued(&self) -> bool {
        !self.input.is_empty()
    }

    fn pending_iter(&self, _epoch: u64) -> Option<u32> {
        None
    }

    fn end_epoch(&mut self, _epoch: u64) {
        debug_assert!(self.input.is_empty(), "{}: input left queued", self.name);
    }

    fn compact(&mut self, _frontier: u64) {}

    fn work(&self) -> u64 {
        self.work
    }

    fn name(&self) -> &'static str {
        self.name
    }
}
