//! The `iterate` scope driver.
//!
//! A scope owns the operators built inside an `iterate` call and runs
//! them to a fixed point within each epoch. Iterations are synchronous:
//! all children are stepped at `(epoch, i)` before `(epoch, i+1)`
//! starts. The loop ends only when no child holds queued input *and* no
//! child owes internal pending work (deferred join outputs or
//! unprocessed interesting times) for the current epoch — the latter is
//! what lets an incremental update "jump" directly to the iterations a
//! change actually affects.
//!
//! Within each iteration, only *dirty* children (those whose input
//! queues received records) and children holding internal pending work
//! are stepped; the rest are skipped. Children are stepped in creation
//! order, a topological order of the loop body (the feedback edge is
//! the only back-edge, and its target — the delay node — is created
//! first), so one pass per iteration still reaches everything a batch
//! can affect.

use std::rc::Rc;

use crate::error::EvalError;
use crate::graph::{OpNode, Scheduler};
use crate::time::Time;

pub(crate) struct ScopeNode {
    slot: usize,
    sched: Option<Rc<Scheduler>>,
    children: Vec<Box<dyn OpNode>>,
    max_iters: u32,
    /// Per-iteration digests of the feedback stream for the current
    /// epoch, used for recurring-state detection.
    digests: Vec<u64>,
}

/// Iterations to run before recurring-state detection engages: genuine
/// convergence is usually done well before this, so anything still
/// cycling afterwards is worth testing for periodicity.
const DETECT_WARMUP: usize = 24;
/// Longest oscillation period the detector looks for.
const DETECT_MAX_PERIOD: usize = 16;
/// Full periods of exact repetition required to report recurrence.
const DETECT_REPEATS: usize = 3;

impl ScopeNode {
    pub fn new(children: Vec<Box<dyn OpNode>>, max_iters: u32) -> Self {
        ScopeNode {
            slot: crate::graph::UNBOUND,
            sched: None,
            children,
            max_iters,
            digests: Vec::new(),
        }
    }

    /// Detect a periodic feedback stream: the same multiset of loop
    /// deltas recurring with a fixed period means the fixpoint will
    /// never be reached (a state revisit or unbounded self-similar
    /// growth). This is the paper's §6 "recurring state detection",
    /// reporting divergence orders of magnitude before the iteration
    /// cap would.
    fn recurring_period(&self) -> Option<u32> {
        let h = &self.digests;
        if h.len() < DETECT_WARMUP {
            return None;
        }
        for p in 1..=DETECT_MAX_PERIOD {
            let needed = p * DETECT_REPEATS;
            if h.len() < needed + p {
                continue;
            }
            let tail = &h[h.len() - needed..];
            let all_match =
                (0..needed - p).all(|j| tail[j] == tail[j + p]);
            // Require a non-degenerate pattern: at least one nonzero
            // digest inside the repeating window.
            if all_match && tail.iter().any(|&d| d != 0) {
                return Some(p as u32);
            }
        }
        None
    }
}

impl OpNode for ScopeNode {
    fn bind(&mut self, slot: usize, sched: &Rc<Scheduler>) {
        // Children were bound when they registered inside the scope;
        // the scope only needs the scheduler handle to read their
        // dirty flags.
        self.slot = slot;
        self.sched = Some(Rc::clone(sched));
    }

    fn slot(&self) -> usize {
        self.slot
    }

    fn step(&mut self, now: Time) -> Result<(), EvalError> {
        debug_assert_eq!(now.iter, 0, "scope stepped at a non-zero iteration");
        let sched = Rc::clone(self.sched.as_ref().expect("scope not bound"));
        let epoch = now.epoch;
        let mut iter = 0u32;
        self.digests.clear();
        loop {
            let t = Time::new(epoch, iter);
            // Step only dirty-or-pending children; a skipped child
            // contributes no feedback digest (it emitted nothing).
            let mut digest = 0u64;
            for child in self.children.iter_mut() {
                let run = sched.take(child.slot()) || child.has_internal_work();
                if run {
                    child.step(t)?;
                    if let Some(d) = child.step_digest() {
                        digest = digest.wrapping_add(d);
                    }
                }
                sched.count(run);
            }
            // Record this iteration's feedback digest for recurrence
            // detection (0 when the feedback stream is silent).
            self.digests.push(digest);
            if let Some(period) = self.recurring_period() {
                return Err(EvalError::RecurringState { period, iteration: iter });
            }
            // Decide the next iteration that has work, if any.
            let mut next: Option<u32> = None;
            let mut bump = |candidate: u32| {
                next = Some(next.map_or(candidate, |n| n.min(candidate)));
            };
            for child in self.children.iter() {
                if child.has_queued() {
                    // Queued records are processed on the very next pass.
                    bump(iter + 1);
                }
                if let Some(p) = child.pending_iter(epoch) {
                    debug_assert!(p > iter, "{}: pending iteration {p} not processed", child.name());
                    bump(p.max(iter + 1));
                }
            }
            match next {
                None => break,
                Some(n) => {
                    if n > self.max_iters {
                        return Err(EvalError::Divergence { iterations: self.max_iters });
                    }
                    if n != iter + 1 {
                        // Skipped iterations break digest alignment.
                        self.digests.clear();
                    }
                    iter = n;
                }
            }
        }
        for child in self.children.iter_mut() {
            child.flush_scope(epoch);
        }
        Ok(())
    }

    fn has_queued(&self) -> bool {
        self.children.iter().any(|c| c.has_queued())
    }

    fn has_internal_work(&self) -> bool {
        // The scope has work iff some child does: either fresh input
        // delivered from the enclosing level (dirty flag) or internal
        // pending state. This is what lets `advance` skip the whole
        // loop on epochs that do not touch it.
        let sched = self.sched.as_ref().expect("scope not bound");
        self.children.iter().any(|c| sched.is_dirty(c.slot()) || c.has_internal_work())
    }

    fn pending_iter(&self, epoch: u64) -> Option<u32> {
        self.children.iter().filter_map(|c| c.pending_iter(epoch)).min()
    }

    fn end_epoch(&mut self, epoch: u64) {
        for child in self.children.iter_mut() {
            child.end_epoch(epoch);
        }
    }

    fn compact(&mut self, frontier: u64) {
        for child in self.children.iter_mut() {
            child.compact(frontier);
        }
    }

    fn trace_sizes(&self) -> (usize, usize) {
        self.children.iter().fold((0, 0), |(b, r), c| {
            let (cb, cr) = c.trace_sizes();
            (b + cb, r + cr)
        })
    }

    fn work(&self) -> u64 {
        self.children.iter().map(|c| c.work()).sum()
    }

    fn collect_stats(&self, acc: &mut std::collections::BTreeMap<&'static str, crate::graph::OpStats>) {
        // Report the children individually, not an "iterate" aggregate.
        for child in &self.children {
            child.collect_stats(acc);
        }
    }

    fn name(&self) -> &'static str {
        "iterate"
    }
}
