//! Keyed difference traces — the persistent state behind `join` and
//! `reduce`.
//!
//! A trace stores, per key, the full timestamped difference history of a
//! collection. Operators accumulate a key's state *as of* a timestamp by
//! summing all differences at times `≤ t` in the product partial order;
//! this is what makes corrections at time joins possible.
//!
//! # Two-layer spine
//!
//! Each key's history is split into two layers:
//!
//! * a **base** layer holding records folded to epoch 0 by
//!   [`KeyTrace::compact`], kept consolidated and sorted by
//!   `(value, iter)` — every base record's time is `(0, iter)`, which is
//!   `≤` any accumulation time in every *epoch*, so only the iteration
//!   component can affect comparisons;
//! * a small **recent** layer of records pushed since the last
//!   compaction, in arrival order.
//!
//! This keeps per-update work proportional to the *change*, not to the
//! total history: [`KeyTrace::accumulate`] merges a cached base
//! accumulation with the (small) recent layer instead of filtering,
//! cloning and re-sorting the whole history, and compaction merges the
//! recent layer into the already-sorted base in one linear pass instead
//! of re-sorting every key.

use std::collections::HashMap;

use crate::delta::{consolidate_values, Data, Diff};
use crate::time::Time;
use crate::util::FxHashMap;

/// A cached full-base accumulation: `(generation, acc)`. Boxed so an
/// uncached spine — the overwhelmingly common case, since only deep
/// bases are cached — stays one pointer wide, keeping the per-key
/// entries small in the trace's hash table.
type BaseAccCache<V> = Option<Box<(u64, Vec<(V, Diff)>)>>;

/// One key's two-layer difference history.
struct KeySpine<V: Data> {
    /// Records folded to epoch 0: consolidated (no duplicate
    /// `(value, iter)` pairs, no zero diffs), sorted by `(value, iter)`.
    base: Vec<(V, u32, Diff)>,
    /// Records pushed since the last compaction, in arrival order.
    recent: Vec<(V, Time, Diff)>,
    /// Largest iteration present in `base` (0 when empty). Base
    /// accumulations at any iteration `≥` this are identical, so they
    /// can all be served from one cached entry.
    max_base_iter: u32,
    /// Cached accumulation of the *whole* base layer (the answer for
    /// any iteration `≥ max_base_iter` — in particular for every
    /// top-level, iteration-0 trace). Valid while the trace generation
    /// matches: pushes land in the recent layer and never invalidate
    /// it; only compaction does. Lookups below `max_base_iter` scan the
    /// base directly instead of thrashing this entry.
    cache: BaseAccCache<V>,
}

impl<V: Data> Default for KeySpine<V> {
    fn default() -> Self {
        KeySpine { base: Vec::new(), recent: Vec::new(), max_base_iter: 0, cache: None }
    }
}

/// Base size below which accumulations scan directly instead of going
/// through the per-key cache. For short histories the scan is a handful
/// of comparisons, and skipping the cache avoids materializing (and
/// cloning out of) a second copy of essentially the whole base.
const CACHE_MIN_BASE: usize = 64;

impl<V: Data> KeySpine<V> {
    /// Accumulate the base layer as of iteration `iter` (base records
    /// all live at epoch 0, so only the iteration matters), sum-merged
    /// with `rec`, an already-consolidated value-sorted recent
    /// contribution. The base is sorted by `(value, iter)`, so one pass
    /// over the value runs produces sorted output — no sorting, and no
    /// intermediate base-only accumulation.
    fn scan_base_merged(&self, iter: u32, rec: &[(V, Diff)]) -> Vec<(V, Diff)> {
        let mut acc: Vec<(V, Diff)> = Vec::new();
        let mut j = 0;
        let mut i = 0;
        while i < self.base.len() {
            let run = i;
            let mut sum = 0;
            while i < self.base.len() && self.base[i].0 == self.base[run].0 {
                if self.base[i].1 <= iter {
                    sum += self.base[i].2;
                }
                i += 1;
            }
            let v = &self.base[run].0;
            while j < rec.len() && rec[j].0 < *v {
                acc.push(rec[j].clone());
                j += 1;
            }
            if j < rec.len() && rec[j].0 == *v {
                sum += rec[j].1;
                j += 1;
            }
            if sum != 0 {
                acc.push((v.clone(), sum));
            }
        }
        acc.extend_from_slice(&rec[j..]);
        acc
    }

    /// Ensure the cache holds the whole-base accumulation for the
    /// current trace generation.
    fn refresh_cache(&mut self, generation: u64) {
        if let Some(c) = &self.cache {
            if c.0 == generation {
                return;
            }
        }
        self.cache =
            Some(Box::new((generation, self.scan_base_merged(self.max_base_iter, &[]))));
    }

    /// Fold recent records at epochs `≤ frontier` down to `(0, iter)`
    /// and merge them into the sorted base in one linear pass.
    fn compact(&mut self, frontier: u64) {
        self.cache = None;
        // Drain foldable records while keeping `recent`'s storage (and
        // the arrival order of what stays): post-compaction pushes
        // reuse the capacity instead of regrowing every key from zero.
        let mut fold: Vec<(V, u32, Diff)> = Vec::new();
        self.recent.retain(|(v, t, r)| {
            if t.epoch <= frontier {
                fold.push((v.clone(), t.iter, *r));
                false
            } else {
                true
            }
        });
        if fold.is_empty() {
            return;
        }
        fold.sort_unstable_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        // Merge the two sorted runs, summing equal (value, iter) pairs
        // and dropping zeros. The base is never re-sorted.
        let base = std::mem::take(&mut self.base);
        let mut merged: Vec<(V, u32, Diff)> = Vec::with_capacity(base.len() + fold.len());
        let push = |out: &mut Vec<(V, u32, Diff)>, rec: (V, u32, Diff)| {
            if let Some(last) = out.last_mut() {
                if last.0 == rec.0 && last.1 == rec.1 {
                    last.2 += rec.2;
                    if last.2 == 0 {
                        out.pop();
                    }
                    return;
                }
            }
            if rec.2 != 0 {
                out.push(rec);
            }
        };
        let mut a = base.into_iter().peekable();
        let mut b = fold.into_iter().peekable();
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => (&x.0, x.1) <= (&y.0, y.1),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let rec = if take_a { a.next().unwrap() } else { b.next().unwrap() };
            push(&mut merged, rec);
        }
        self.base = merged;
        self.max_base_iter = self.base.iter().map(|&(_, i, _)| i).max().unwrap_or(0);
    }
}

/// Per-key timestamped difference history, stored as a two-layer spine.
pub struct KeyTrace<K: Data, V: Data> {
    entries: FxHashMap<K, KeySpine<V>>,
    /// Total records in the base layers.
    base_len: usize,
    /// Total records in the recent layers.
    recent_len: usize,
    /// Bumped by `compact`; tags base-accumulation cache entries.
    generation: u64,
}

impl<K: Data, V: Data> Default for KeyTrace<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Data, V: Data> KeyTrace<K, V> {
    pub fn new() -> Self {
        KeyTrace { entries: HashMap::default(), base_len: 0, recent_len: 0, generation: 0 }
    }

    /// Append one difference (into the recent layer).
    pub fn push(&mut self, k: K, v: V, t: Time, r: Diff) {
        if r == 0 {
            return;
        }
        self.entries.entry(k).or_default().recent.push((v, t, r));
        self.recent_len += 1;
    }

    /// Iterate all differences recorded for `k`, base layer first.
    /// Neither layer is materialized.
    pub fn history<'a>(&'a self, k: &K) -> impl Iterator<Item = (&'a V, Time, Diff)> + 'a {
        let spine = self.entries.get(k);
        let base = spine.map(|s| s.base.as_slice()).unwrap_or(&[]);
        let recent = spine.map(|s| s.recent.as_slice()).unwrap_or(&[]);
        base.iter()
            .map(|(v, i, r)| (v, Time::new(0, *i), *r))
            .chain(recent.iter().map(|(v, t, r)| (v, *t, *r)))
    }

    /// Accumulate `k`'s state as of `t` (product order), consolidated
    /// and sorted by value. The base contribution needs no sorting: at
    /// or above `max_base_iter` it is served from a generation-tagged
    /// per-key cache (valid across pushes, dropped on compaction), and
    /// below it a single pass over the value-sorted base suffices. The
    /// (small) recent layer is merged on top.
    pub fn accumulate(&mut self, k: &K, t: Time) -> Vec<(V, Diff)> {
        let generation = self.generation;
        let Some(spine) = self.entries.get_mut(k) else {
            return Vec::new();
        };
        let mut rec: Vec<(V, Diff)> = spine
            .recent
            .iter()
            .filter(|(_, u, _)| u.leq(t))
            .map(|(v, _, r)| (v.clone(), *r))
            .collect();
        consolidate_values(&mut rec);
        if t.iter < spine.max_base_iter || spine.base.len() < CACHE_MIN_BASE {
            return spine.scan_base_merged(t.iter, &rec);
        }
        spine.refresh_cache(generation);
        let base_acc: &[(V, Diff)] =
            spine.cache.as_ref().map(|c| c.1.as_slice()).unwrap_or(&[]);
        if rec.is_empty() {
            return base_acc.to_vec();
        }
        merge_accumulations(base_acc, &rec)
    }

    /// Visit every difference recorded for `k`, base layer first. Two
    /// tight slice loops — the hot path under `join`, where each input
    /// difference walks the other side's whole history.
    pub fn for_each(&self, k: &K, mut f: impl FnMut(&V, Time, Diff)) {
        if let Some(spine) = self.entries.get(k) {
            for (v, i, r) in &spine.base {
                f(v, Time::new(0, *i), *r);
            }
            for (v, t, r) in &spine.recent {
                f(v, *t, *r);
            }
        }
    }

    /// The distinct timestamps at which `k` has recorded differences,
    /// written into `out` (sorted, deduplicated). Reusing a caller-side
    /// scratch buffer avoids a fresh allocation per lookup.
    pub fn times_into(&self, k: &K, out: &mut Vec<Time>) {
        out.clear();
        if let Some(spine) = self.entries.get(k) {
            out.extend(spine.base.iter().map(|&(_, i, _)| Time::new(0, i)));
            out.extend(spine.recent.iter().map(|&(_, t, _)| t));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// [`KeyTrace::times_into`] returning a fresh `Vec`.
    pub fn times(&self, k: &K) -> Vec<Time> {
        let mut ts = Vec::new();
        self.times_into(k, &mut ts);
        ts
    }

    /// Number of stored difference records (both layers).
    pub fn len(&self) -> usize {
        self.base_len + self.recent_len
    }

    /// Records in the consolidated base layer.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Records in the recent delta layer.
    pub fn recent_len(&self) -> usize {
        self.recent_len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over keys (arbitrary order).
    #[allow(dead_code)] // part of the trace API; exercised by tests
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Compact the trace below an epoch frontier: every record with
    /// `epoch ≤ frontier` is retimed to epoch 0 (keeping its iteration)
    /// and merged into the key's sorted base layer. Sound because any
    /// future accumulation time has epoch `> frontier`, so only the
    /// iteration component of old records can affect comparisons.
    pub fn compact(&mut self, frontier: u64) {
        self.generation += 1;
        let mut base_len = 0;
        let mut recent_len = 0;
        self.entries.retain(|_, spine| {
            spine.compact(frontier);
            base_len += spine.base.len();
            recent_len += spine.recent.len();
            !spine.base.is_empty() || !spine.recent.is_empty()
        });
        self.base_len = base_len;
        self.recent_len = recent_len;
    }
}

/// Sum-merge two consolidated, value-sorted accumulations, dropping
/// zeros. Both inputs must be sorted by value with no duplicates.
fn merge_accumulations<V: Data>(a: &[(V, Diff)], b: &[(V, Diff)]) -> Vec<(V, Diff)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let sum = a[i].1 + b[j].1;
                if sum != 0 {
                    out.push((a[i].0.clone(), sum));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_respects_partial_order() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(1, 0), 1);
        tr.push("k", 2, Time::new(1, 3), 1);
        tr.push("k", 3, Time::new(2, 1), 1);
        // As of (2, 0): only the (1,0) record is ≤.
        assert_eq!(tr.accumulate(&"k", Time::new(2, 0)), vec![(1, 1)]);
        // As of (2, 3): everything.
        assert_eq!(tr.accumulate(&"k", Time::new(2, 3)), vec![(1, 1), (2, 1), (3, 1)]);
        // As of (1, 3): first two.
        assert_eq!(tr.accumulate(&"k", Time::new(1, 3)), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn accumulate_consolidates() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 7, Time::new(1, 0), 1);
        tr.push("k", 7, Time::new(2, 0), -1);
        assert_eq!(tr.accumulate(&"k", Time::new(2, 0)), vec![]);
        assert_eq!(tr.accumulate(&"k", Time::new(1, 0)), vec![(7, 1)]);
    }

    #[test]
    fn times_dedup_sorted() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(2, 0), 1);
        tr.push("k", 2, Time::new(1, 0), 1);
        tr.push("k", 3, Time::new(2, 0), 1);
        assert_eq!(tr.times(&"k"), vec![Time::new(1, 0), Time::new(2, 0)]);
    }

    #[test]
    fn compact_preserves_future_accumulations() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(1, 0), 1);
        tr.push("k", 1, Time::new(2, 0), -1);
        tr.push("k", 2, Time::new(3, 2), 1);
        let before = tr.accumulate(&"k", Time::new(9, 5));
        let before_low_iter = tr.accumulate(&"k", Time::new(9, 0));
        tr.compact(3);
        assert_eq!(tr.accumulate(&"k", Time::new(9, 5)), before);
        assert_eq!(tr.accumulate(&"k", Time::new(9, 0)), before_low_iter);
        // The cancelling pair was merged away; the survivor sits in the
        // base layer.
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.base_len(), 1);
        assert_eq!(tr.recent_len(), 0);
    }

    #[test]
    fn compact_drops_empty_keys() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(1, 0), 1);
        tr.push("k", 1, Time::new(2, 0), -1);
        tr.compact(2);
        assert!(tr.is_empty());
        assert_eq!(tr.keys().count(), 0);
    }

    #[test]
    fn compact_leaves_future_records_in_recent_layer() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(1, 0), 1);
        tr.push("k", 2, Time::new(3, 0), 1);
        tr.compact(2);
        assert_eq!(tr.base_len(), 1);
        assert_eq!(tr.recent_len(), 1);
        assert_eq!(tr.accumulate(&"k", Time::new(3, 0)), vec![(1, 1), (2, 1)]);
        assert_eq!(tr.times(&"k"), vec![Time::new(0, 0), Time::new(3, 0)]);
    }

    #[test]
    fn accumulation_cache_survives_pushes() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        for e in 1..=4 {
            tr.push("k", e as u32, Time::new(e, 0), 1);
        }
        tr.compact(4);
        let base = tr.accumulate(&"k", Time::new(5, 0));
        // A push after compaction must show up even though the base
        // accumulation is cached.
        tr.push("k", 99, Time::new(5, 0), 1);
        let mut expect = base.clone();
        expect.push((99, 1));
        assert_eq!(tr.accumulate(&"k", Time::new(5, 0)), expect);
        // At a later epoch the cached base is reused again.
        assert_eq!(tr.accumulate(&"k", Time::new(6, 0)), expect);
    }

    #[test]
    fn history_iterates_both_layers() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(1, 0), 1);
        tr.compact(1);
        tr.push("k", 2, Time::new(2, 0), 1);
        let hist: Vec<(u32, Time, Diff)> =
            tr.history(&"k").map(|(v, t, r)| (*v, t, r)).collect();
        assert_eq!(hist, vec![(1, Time::new(0, 0), 1), (2, Time::new(2, 0), 1)]);
    }
}
