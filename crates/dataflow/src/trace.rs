//! Keyed difference traces — the persistent state behind `join` and
//! `reduce`.
//!
//! A trace stores, per key, the full timestamped difference history of a
//! collection. Operators accumulate a key's state *as of* a timestamp by
//! summing all differences at times `≤ t` in the product partial order;
//! this is what makes corrections at time joins possible.

use std::collections::HashMap;

use crate::delta::{consolidate_values, Data, Diff};
use crate::time::Time;
use crate::util::FxHashMap;

/// Per-key timestamped difference history.
pub struct KeyTrace<K: Data, V: Data> {
    entries: FxHashMap<K, Vec<(V, Time, Diff)>>,
    /// Total records stored (approximate, pre-consolidation).
    len: usize,
}

impl<K: Data, V: Data> Default for KeyTrace<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Data, V: Data> KeyTrace<K, V> {
    pub fn new() -> Self {
        KeyTrace { entries: HashMap::default(), len: 0 }
    }

    /// Append one difference.
    pub fn push(&mut self, k: K, v: V, t: Time, r: Diff) {
        if r == 0 {
            return;
        }
        self.entries.entry(k).or_default().push((v, t, r));
        self.len += 1;
    }

    /// All differences recorded for `k`.
    pub fn history(&self, k: &K) -> &[(V, Time, Diff)] {
        self.entries.get(k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Accumulate `k`'s state as of `t` (product order), consolidated and
    /// sorted by value.
    pub fn accumulate(&self, k: &K, t: Time) -> Vec<(V, Diff)> {
        let mut acc: Vec<(V, Diff)> = self
            .history(k)
            .iter()
            .filter(|(_, u, _)| u.leq(t))
            .map(|(v, _, r)| (v.clone(), *r))
            .collect();
        consolidate_values(&mut acc);
        acc
    }

    /// The distinct timestamps at which `k` has recorded differences.
    pub fn times(&self, k: &K) -> Vec<Time> {
        let mut ts: Vec<Time> =
            self.history(k).iter().map(|&(_, t, _)| t).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Number of stored difference records.
    #[allow(dead_code)] // part of the trace API; exercised by tests
    pub fn len(&self) -> usize {
        self.len
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over keys (arbitrary order).
    #[allow(dead_code)]
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Compact the trace below an epoch frontier: every record with
    /// `epoch ≤ frontier` is retimed to epoch 0 (keeping its iteration)
    /// and merged. Sound because any future accumulation time has epoch
    /// `> frontier`, so only the iteration component of old records can
    /// affect comparisons.
    pub fn compact(&mut self, frontier: u64) {
        self.len = 0;
        self.entries.retain(|_, hist| {
            for rec in hist.iter_mut() {
                if rec.1.epoch <= frontier {
                    rec.1 = Time::new(0, rec.1.iter);
                }
            }
            // Consolidate equal (value, time) runs.
            hist.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
            let mut write = 0;
            let mut read = 0;
            while read < hist.len() {
                let mut end = read + 1;
                let mut sum = hist[read].2;
                while end < hist.len() && hist[end].0 == hist[read].0 && hist[end].1 == hist[read].1
                {
                    sum += hist[end].2;
                    end += 1;
                }
                if sum != 0 {
                    hist.swap(write, read);
                    hist[write].2 = sum;
                    write += 1;
                }
                read = end;
            }
            hist.truncate(write);
            !hist.is_empty()
        });
        for hist in self.entries.values() {
            self.len += hist.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_respects_partial_order() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(1, 0), 1);
        tr.push("k", 2, Time::new(1, 3), 1);
        tr.push("k", 3, Time::new(2, 1), 1);
        // As of (2, 0): only the (1,0) record is ≤.
        assert_eq!(tr.accumulate(&"k", Time::new(2, 0)), vec![(1, 1)]);
        // As of (2, 3): everything.
        assert_eq!(tr.accumulate(&"k", Time::new(2, 3)), vec![(1, 1), (2, 1), (3, 1)]);
        // As of (1, 3): first two.
        assert_eq!(tr.accumulate(&"k", Time::new(1, 3)), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn accumulate_consolidates() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 7, Time::new(1, 0), 1);
        tr.push("k", 7, Time::new(2, 0), -1);
        assert_eq!(tr.accumulate(&"k", Time::new(2, 0)), vec![]);
        assert_eq!(tr.accumulate(&"k", Time::new(1, 0)), vec![(7, 1)]);
    }

    #[test]
    fn times_dedup_sorted() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(2, 0), 1);
        tr.push("k", 2, Time::new(1, 0), 1);
        tr.push("k", 3, Time::new(2, 0), 1);
        assert_eq!(tr.times(&"k"), vec![Time::new(1, 0), Time::new(2, 0)]);
    }

    #[test]
    fn compact_preserves_future_accumulations() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(1, 0), 1);
        tr.push("k", 1, Time::new(2, 0), -1);
        tr.push("k", 2, Time::new(3, 2), 1);
        let before = tr.accumulate(&"k", Time::new(9, 5));
        let before_low_iter = tr.accumulate(&"k", Time::new(9, 0));
        tr.compact(3);
        assert_eq!(tr.accumulate(&"k", Time::new(9, 5)), before);
        assert_eq!(tr.accumulate(&"k", Time::new(9, 0)), before_low_iter);
        // The cancelling pair was merged away.
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn compact_drops_empty_keys() {
        let mut tr: KeyTrace<&str, u32> = KeyTrace::new();
        tr.push("k", 1, Time::new(1, 0), 1);
        tr.push("k", 1, Time::new(2, 0), -1);
        tr.compact(2);
        assert!(tr.is_empty());
        assert_eq!(tr.keys().count(), 0);
    }
}
