pub use realconfig::*;
