//! Contract tests for [`realconfig::Error::Divergence`].
//!
//! The docs promise: when a change makes the control plane diverge, the
//! verifier is poisoned — [`RealConfig::needs_rebuild`] reports it,
//! further applies are refused with [`Error::Poisoned`] — but the
//! *configurations* stay at the last good set, so
//! [`RealConfig::rebuild`] (or a fresh build from `rc.configs()`)
//! recovers in place. These tests pin that contract.

use std::collections::BTreeMap;

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::ring;
use rc_netcfg::DeviceConfig;
use realconfig::{ChangeSet, Error, RealConfig};

/// A 3-ring of BGP routers. Stable as generated; raising the local
/// preference on every router's counterclockwise side builds the
/// classic "bad gadget" whose best-path choices chase each other
/// forever.
fn stable_ring() -> BTreeMap<String, DeviceConfig> {
    build_configs(&ring(3), ProtocolChoice::Bgp)
}

/// The change that completes the preference cycle, given that the
/// other two routers already prefer their counterclockwise neighbor.
fn cycle_changes() -> Vec<ChangeSet> {
    (0..3).map(|n| ChangeSet::local_pref(&format!("r{n:03}"), "eth1", 200)).collect()
}

/// Drive a verifier into divergence; returns it with its last good
/// configuration set. Panics if the gadget unexpectedly converges.
fn diverge(rc: &mut RealConfig) {
    let changes = cycle_changes();
    // The first two preference bumps leave the ring convergent…
    rc.apply_change(&changes[0]).expect("one raised pref still converges");
    rc.apply_change(&changes[1]).expect("two raised prefs still converge");
    // …the third completes the cycle.
    match rc.apply_change(&changes[2]) {
        Err(Error::Divergence(_)) => {}
        Ok(_) => panic!("the bad gadget converged — the test gadget is broken"),
        Err(e) => panic!("expected Divergence, got: {e}"),
    }
}

#[test]
fn divergence_reports_an_error_not_a_hang() {
    let (mut rc, _) = RealConfig::new(stable_ring()).expect("stable ring verifies");
    diverge(&mut rc);
}

#[test]
fn configs_stay_at_the_last_good_set_after_divergence() {
    let (mut rc, _) = RealConfig::new(stable_ring()).expect("stable ring verifies");
    diverge(&mut rc);
    // The diverging change must NOT have been committed: the verifier
    // still reports the configurations from before the failed change.
    let mut expected = stable_ring();
    let changes = cycle_changes();
    changes[0].apply(&mut expected).unwrap();
    changes[1].apply(&mut expected).unwrap();
    assert_eq!(rc.configs(), &expected, "diverging change leaked into configs()");
}

#[test]
fn rebuilding_from_last_good_configs_recovers() {
    let (mut rc, _) = RealConfig::new(stable_ring()).expect("stable ring verifies");
    diverge(&mut rc);

    // The documented recovery path: rebuild from the last good
    // configurations. It must succeed and match a from-scratch build
    // of the same configurations exactly.
    let (rebuilt, report) =
        RealConfig::new(rc.configs().clone()).expect("last good configs verify");
    let (fresh, _) = RealConfig::new(rc.configs().clone()).expect("verifies");
    assert!(report.fib_entries > 0);
    assert_eq!(rebuilt.fib(), fresh.fib());
    assert_eq!(rebuilt.num_pairs(), fresh.num_pairs());

    // And the rebuilt verifier is fully operational: a benign change
    // (undoing one preference bump) verifies incrementally.
    let mut rebuilt = rebuilt;
    let report = rebuilt
        .apply_change(&ChangeSet::local_pref("r000", "eth1", 100))
        .expect("repair verifies");
    assert!(report.fact_changes > 0);
}

#[test]
fn divergence_poisons_until_rebuilt_in_place() {
    let (mut rc, _) = RealConfig::new(stable_ring()).expect("stable ring verifies");
    diverge(&mut rc);

    // Poisoned: the verifier says so and refuses further changes.
    assert!(rc.needs_rebuild(), "divergence must poison the verifier");
    let benign = ChangeSet::local_pref("r000", "eth1", 100);
    match rc.apply_change(&benign) {
        Err(Error::Poisoned) => {}
        other => panic!("expected Poisoned while poisoned, got: {other:?}"),
    }

    // In-place recovery from the last good configurations.
    let report = rc.rebuild().expect("rebuild from last good configs succeeds");
    assert!(!rc.needs_rebuild(), "successful rebuild un-poisons");
    assert!(report.fib_entries > 0);

    // The rebuilt verifier equals a from-scratch build of the same
    // configurations…
    let (fresh, _) = RealConfig::new(rc.configs().clone()).expect("verifies");
    assert_eq!(rc.fib(), fresh.fib());
    assert_eq!(rc.num_pairs(), fresh.num_pairs());

    // …and is fully operational again.
    let report = rc.apply_change(&benign).expect("repair verifies incrementally");
    assert!(report.fact_changes > 0);
}

#[test]
fn rebuild_counters_appear_in_metrics() {
    let (mut rc, _) = RealConfig::new(stable_ring()).expect("stable ring verifies");
    diverge(&mut rc);
    rc.rebuild().expect("rebuild succeeds");

    let snap = rc.metrics_snapshot();
    assert_eq!(snap.counters.get("verifier.poison_events"), Some(&1));
    assert_eq!(snap.counters.get("verifier.rebuilds"), Some(&1));
    assert!(snap.counters.get("verifier.rollbacks").copied().unwrap_or(0) >= 1);
    let h = snap.histograms.get("verifier.rebuild_us").expect("rebuild latency histogram");
    assert_eq!(h.count, 1, "one rebuild recorded");
}

#[test]
fn divergence_on_initial_build_is_an_error() {
    let mut configs = stable_ring();
    for cs in cycle_changes() {
        cs.apply(&mut configs).unwrap();
    }
    match RealConfig::new(configs) {
        Err(Error::Divergence(_)) => {}
        Ok(_) => panic!("the bad gadget converged — the test gadget is broken"),
        Err(e) => panic!("expected Divergence, got: {e}"),
    }
}
