//! Whole-pipeline differential between the two predicate backends on
//! the paper's evaluation workload: two verifiers over the same k=4
//! BGP fat tree, one per backend, driven through the same change
//! sequence with the same policies. Every externally visible artifact
//! — FIBs, rule/EC/pair counts, change reports (non-timing fields),
//! policy verdicts, packet traces — must be identical.
//!
//! Backends are passed explicitly via `with_order_backend`, not the
//! process-global knob, so this test is safe under a parallel test
//! runner.

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix};
use realconfig::{
    ChangeSet, Packet, PredKind, RealConfig, UpdateOrder,
};

fn build_pair() -> (RealConfig, RealConfig) {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Bgp);
    let (with_bdd, full_b) =
        RealConfig::with_order_backend(configs.clone(), UpdateOrder::InsertFirst, PredKind::Bdd)
            .expect("bdd build");
    let (with_atoms, full_a) =
        RealConfig::with_order_backend(configs, UpdateOrder::InsertFirst, PredKind::Atoms)
            .expect("atoms build");
    assert_eq!(with_bdd.backend(), PredKind::Bdd);
    assert_eq!(with_atoms.backend(), PredKind::Atoms);
    assert_eq!(full_b.fib_entries, full_a.fib_entries);
    assert_eq!(full_b.rules, full_a.rules);
    assert_eq!(full_b.ecs, full_a.ecs);
    assert_eq!(full_b.pairs, full_a.pairs);
    (with_bdd, with_atoms)
}

fn assert_same_state(b: &RealConfig, a: &RealConfig) {
    assert_eq!(b.fib(), a.fib(), "FIBs diverge between backends");
    assert_eq!(b.num_rules(), a.num_rules());
    assert_eq!(b.num_pairs(), a.num_pairs());
}

#[test]
fn backends_agree_through_change_sequence() {
    let (mut with_bdd, mut with_atoms) = build_pair();

    // The same policies on both: one satisfiable reachability pair,
    // one that the link failure below will break.
    let pol_b = with_bdd
        .require_reachability("pod00-edge00", "pod01-edge00", host_prefix(4))
        .expect("nodes exist");
    let pol_a = with_atoms
        .require_reachability("pod00-edge00", "pod01-edge00", host_prefix(4))
        .expect("nodes exist");
    assert_eq!(pol_b, pol_a);
    with_bdd.recheck_policies();
    with_atoms.recheck_policies();
    assert_eq!(with_bdd.is_satisfied(pol_b), with_atoms.is_satisfied(pol_a));

    let changes = [
        ChangeSet::link_failure("pod00-edge00", "eth0"),
        ChangeSet::local_pref("pod01-edge00", "eth0", 150),
        ChangeSet {
            ops: vec![realconfig::ChangeOp::EnableInterface {
                device: "pod00-edge00".into(),
                iface: "eth0".into(),
            }],
        },
        ChangeSet::local_pref("pod01-edge00", "eth0", 100),
    ];
    for (i, cs) in changes.iter().enumerate() {
        let rb = with_bdd.apply_change(cs).expect("bdd verifies");
        let ra = with_atoms.apply_change(cs).expect("atoms verifies");
        assert_eq!(rb.fact_changes, ra.fact_changes, "change {i}");
        assert_eq!(rb.rules_inserted, ra.rules_inserted, "change {i}");
        assert_eq!(rb.rules_removed, ra.rules_removed, "change {i}");
        assert_eq!(rb.ec_moves, ra.ec_moves, "change {i}");
        assert_eq!(rb.affected_ecs, ra.affected_ecs, "change {i}");
        assert_eq!(rb.affected_pairs, ra.affected_pairs, "change {i}");
        assert_eq!(rb.newly_violated, ra.newly_violated, "change {i}");
        assert_eq!(rb.newly_satisfied, ra.newly_satisfied, "change {i}");
        assert_eq!(with_bdd.is_satisfied(pol_b), with_atoms.is_satisfied(pol_a), "change {i}");
        assert_same_state(&with_bdd, &with_atoms);
    }
}

#[test]
fn backends_trace_packets_identically() {
    let (with_bdd, with_atoms) = build_pair();
    for host in 0..8u32 {
        let pkt = Packet {
            dst_ip: host_prefix(host).addr().0 | 1,
            proto: 6,
            ..Default::default()
        };
        let tb = with_bdd.trace_packet("pod00-edge00", pkt);
        let ta = with_atoms.trace_packet("pod00-edge00", pkt);
        // PacketTrace carries no PartialEq; its Debug form covers every
        // field (hops, rules, EC id, delivery set).
        assert_eq!(format!("{tb:?}"), format!("{ta:?}"), "trace diverges for host {host}");
    }
}

#[test]
fn backend_survives_rebuild() {
    let (mut with_bdd, mut with_atoms) = build_pair();
    with_bdd.rebuild().expect("rebuild");
    with_atoms.rebuild().expect("rebuild");
    assert_eq!(with_bdd.backend(), PredKind::Bdd);
    assert_eq!(with_atoms.backend(), PredKind::Atoms);
    assert_same_state(&with_bdd, &with_atoms);
}
