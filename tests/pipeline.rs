//! End-to-end pipeline tests on the paper's evaluation workloads
//! (scaled-down fat trees): the incremental verifier must stay
//! consistent with a from-scratch rebuild after every change, and its
//! reports must show the incrementality the paper claims.

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix};
use realconfig::{ChangeSet, PacketClass, Policy, RealConfig};

/// Rebuild a fresh verifier from the same configurations and compare
/// all externally visible state.
fn assert_matches_fresh(rc: &RealConfig) {
    let (fresh, _) = RealConfig::new(rc.configs().clone()).expect("fresh build");
    assert_eq!(rc.fib(), fresh.fib(), "incremental FIB diverged from a fresh build");
    assert_eq!(rc.num_pairs(), fresh.num_pairs(), "pair map diverged");
}

#[test]
fn fat_tree_ospf_change_sequence() {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Ospf);
    let (mut rc, full) = RealConfig::new(configs).unwrap();
    assert!(full.warnings.is_empty(), "{:?}", full.warnings);
    assert!(full.fib_entries > 0);
    assert!(full.pairs > 0);

    // The paper's LinkFailure: deactivate an edge uplink.
    let report = rc.apply_change(&ChangeSet::link_failure("pod00-edge00", "eth0")).unwrap();
    assert!(report.fact_changes > 0);
    assert!(report.rules_inserted + report.rules_removed > 0);
    assert_matches_fresh(&rc);

    // The paper's LC: cost 1 → 100.
    let report = rc.apply_change(&ChangeSet::link_cost("pod01-edge00", "eth0", 100)).unwrap();
    assert_eq!(report.lines_inserted, 1, "one line modified");
    assert_eq!(report.lines_deleted, 1);
    assert_matches_fresh(&rc);

    // Restore both.
    rc.apply_change(&ChangeSet {
        ops: vec![realconfig::ChangeOp::EnableInterface {
            device: "pod00-edge00".into(),
            iface: "eth0".into(),
        }],
    })
    .unwrap();
    rc.apply_change(&ChangeSet::link_cost("pod01-edge00", "eth0", 1)).unwrap();
    assert_matches_fresh(&rc);
}

#[test]
fn fat_tree_bgp_change_sequence() {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Bgp);
    let (mut rc, full) = RealConfig::new(configs).unwrap();
    assert!(full.warnings.is_empty(), "{:?}", full.warnings);

    // LinkFailure.
    let report = rc.apply_change(&ChangeSet::link_failure("pod00-edge00", "eth0")).unwrap();
    assert!(report.rules_inserted + report.rules_removed > 0);
    assert_matches_fresh(&rc);

    // LP: 100 → 150 on one interface's imports.
    let report = rc.apply_change(&ChangeSet::local_pref("pod02-edge01", "eth1", 150)).unwrap();
    assert!(report.affected_ecs > 0 || report.rules_inserted + report.rules_removed == 0);
    assert_matches_fresh(&rc);

    // Only a small fraction of rules is affected (paper: < 1%).
    let total = rc.num_rules();
    assert!(
        (report.rules_inserted + report.rules_removed) * 10 < total,
        "change touched {}+{} of {} rules",
        report.rules_inserted,
        report.rules_removed,
        total
    );
}

#[test]
fn policies_track_changes_incrementally() {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Ospf);
    let (mut rc, _) = RealConfig::new(configs).unwrap();

    // All-pairs-style policies over edge switches of two pods.
    let mut policies = Vec::new();
    for (si, s) in ["pod00-edge00", "pod00-edge01"].iter().enumerate() {
        for (di, d) in ["pod01-edge00", "pod01-edge01"].iter().enumerate() {
            let prefix = host_prefix((2 + di) as u32); // pod01 edge prefixes
            let id = rc.require_reachability(s, d, prefix).unwrap();
            policies.push(((si, di), id));
        }
    }
    rc.recheck_policies();
    for (_, id) in &policies {
        assert!(rc.is_satisfied(*id));
    }

    // Cut pod00-edge00 off entirely (both uplinks): its policies break,
    // the other source's survive.
    rc.apply_change(&ChangeSet::link_failure("pod00-edge00", "eth0")).unwrap();
    let report = rc.apply_change(&ChangeSet::link_failure("pod00-edge00", "eth1")).unwrap();
    assert!(!report.newly_violated.is_empty());
    for ((si, _), id) in &policies {
        assert_eq!(rc.is_satisfied(*id), *si != 0, "policy {id:?}");
    }

    // Repair: newly_satisfied must fire.
    rc.apply_change(&ChangeSet {
        ops: vec![realconfig::ChangeOp::EnableInterface {
            device: "pod00-edge00".into(),
            iface: "eth0".into(),
        }],
    })
    .unwrap();
    let report = rc
        .apply_change(&ChangeSet {
            ops: vec![realconfig::ChangeOp::EnableInterface {
                device: "pod00-edge00".into(),
                iface: "eth1".into(),
            }],
        })
        .unwrap();
    let _ = report;
    for (_, id) in &policies {
        assert!(rc.is_satisfied(*id), "all policies restored");
    }
}

#[test]
fn acl_changes_flow_through_to_policies() {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Ospf);
    let (mut rc, _) = RealConfig::new(configs).unwrap();
    let src = rc.node("pod00-edge00").unwrap();
    let dst = rc.node("pod03-edge01").unwrap();
    let prefix = host_prefix(7);
    let http_blocked = rc.add_policy(Policy::Isolation {
        src,
        dst,
        class: PacketClass::DstPrefix(prefix),
    });
    rc.recheck_policies();
    assert!(!rc.is_satisfied(http_blocked), "traffic flows, isolation violated");

    // Deny everything to that prefix at the destination edge's ingress
    // interfaces.
    let mut cs = ChangeSet::new();
    cs.push(realconfig::ChangeOp::AddAclEntry {
        device: "pod03-edge01".into(),
        acl: "BLOCK".into(),
        entry: rc_netcfg::ast::AclEntry {
            seq: 10,
            action: rc_netcfg::ast::AclAction::Deny,
            proto: None,
            src: realconfig::Prefix::DEFAULT,
            dst: prefix,
            dst_ports: None,
        },
    });
    for iface in ["eth0", "eth1"] {
        cs.push(realconfig::ChangeOp::BindAcl {
            device: "pod03-edge01".into(),
            iface: iface.into(),
            dir: realconfig::AclDir::In,
            acl: "BLOCK".into(),
        });
    }
    let report = rc.apply_change(&cs).unwrap();
    assert!(report.newly_satisfied.contains(&http_blocked.0));
    assert!(rc.is_satisfied(http_blocked));
}

#[test]
fn incremental_is_faster_than_full_on_repeat_changes() {
    // Not a benchmark — a sanity bound: incremental work (dataflow
    // records) across a change must be well under the initial full
    // computation.
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Bgp);
    let (mut rc, full) = RealConfig::new(configs).unwrap();
    let report = rc.apply_change(&ChangeSet::local_pref("pod00-edge00", "eth0", 150)).unwrap();
    assert!(
        report.dp_records * 5 < full.dp_records,
        "incremental {} vs full {} records",
        report.dp_records,
        full.dp_records
    );
}

#[test]
fn divergence_is_reported_not_hung() {
    let mut configs = build_configs(&rc_netcfg::topology::ring(3), ProtocolChoice::Bgp);
    for n in 0..3 {
        ChangeSet::local_pref(&format!("r{n:03}"), "eth1", 200).apply(&mut configs).unwrap();
    }
    match RealConfig::new(configs) {
        Err(realconfig::Error::Divergence(_)) => {}
        Ok(_) => {} // the gadget may be stable depending on tiebreaks
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn bad_change_leaves_verifier_untouched() {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Ospf);
    let (mut rc, _) = RealConfig::new(configs).unwrap();
    let fib_before = rc.fib();
    let err = rc.apply_change(&ChangeSet::link_failure("no-such-device", "eth0"));
    assert!(matches!(err, Err(realconfig::Error::Change(_))));
    assert_eq!(rc.fib(), fib_before);
    // Still usable afterwards.
    rc.apply_change(&ChangeSet::link_failure("pod00-edge00", "eth0")).unwrap();
    assert_matches_fresh(&rc);
}
