//! Whole-verifier incrementality soundness: for random change
//! sequences, the incrementally maintained verifier must agree with a
//! from-scratch rebuild after every change — FIB, pair counts, and
//! policy verdicts alike.
//!
//! The command language and oracle loop live in `common/mod.rs`,
//! shared with `regression_counterexamples.rs` which pins the shrunk
//! inputs recorded in `incremental_soundness.proptest-regressions`.

mod common;

use common::{run, Cmd};
use proptest::prelude::*;
use rc_netcfg::gen::ProtocolChoice;
use rc_netcfg::topology::{grid, ring};

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0usize..16, 0usize..4).prop_map(|(dev, iface)| Cmd::ToggleIface { dev, iface }),
            2 => (0usize..16, 0usize..4, prop_oneof![Just(1u32), Just(100)])
                .prop_map(|(dev, iface, cost)| Cmd::SetCost { dev, iface, cost }),
            2 => (0usize..16, 0usize..4, prop_oneof![Just(50u32), Just(150)])
                .prop_map(|(dev, iface, pref)| Cmd::SetLp { dev, iface, pref }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::StaticDrop { dev, pfx }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::UnStatic { dev, pfx }),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ospf_ring(cmds in arb_cmds()) {
        run(ProtocolChoice::Ospf, ring(5), cmds);
    }

    #[test]
    fn bgp_ring(cmds in arb_cmds()) {
        run(ProtocolChoice::Bgp, ring(5), cmds);
    }

    #[test]
    fn ospf_grid(cmds in arb_cmds()) {
        run(ProtocolChoice::Ospf, grid(3, 3), cmds);
    }

    #[test]
    fn bgp_grid(cmds in arb_cmds()) {
        run(ProtocolChoice::Bgp, grid(3, 3), cmds);
    }

    #[test]
    fn rip_ring(cmds in arb_cmds()) {
        run(ProtocolChoice::Rip, ring(5), cmds);
    }
}
