//! Crash-recovery chaos suite for the persistence subsystem: drive a
//! verifier through config churn with periodic snapshots and an active
//! journal while deterministic [`rc_faults`] store faults tear writes,
//! truncate appends, flip bits on read, and fail fsyncs — then crash
//! (drop the verifier cold) and reopen from disk. The recovery ladder
//! must always produce a working verifier (never poisoned, never a
//! refusal to start) whose state equals a never-crashed twin built
//! fresh over the recovered configurations.

mod common;

use common::{to_changeset, Cmd};
use proptest::prelude::*;
use rc_faults::{FaultPlan, FaultPoint};
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{host_prefix, ring};
use realconfig::RealConfig;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique-per-use scratch state directory, removed on drop.
struct StateDir(PathBuf);

impl StateDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rc-chaos-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StateDir(dir)
    }
}

impl Drop for StateDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn standing_policies(rc: &mut RealConfig) {
    let names: Vec<String> = rc.configs().keys().cloned().collect();
    for (i, s) in names.iter().take(3).enumerate() {
        let di = names.len() - 1 - i;
        let d = names[di].clone();
        rc.require_reachability(s, &d, host_prefix(di as u32));
    }
    rc.recheck_policies();
}

/// The recovered verifier must match a never-crashed twin built fresh
/// over the recovered configurations, with the same policies.
fn assert_matches_twin(rc: &mut RealConfig, ctx: &str) {
    let (mut twin, _) =
        RealConfig::new(rc.configs().clone()).expect("twin build from recovered configs");
    standing_policies(&mut twin);
    if rc.policy_specs().is_empty() {
        // The bottom rung rebuilds from bare configurations; policies
        // are the caller's to re-register, exactly as on a cold start.
        standing_policies(rc);
    }
    rc.recheck_policies();
    // EC counts are deliberately not compared: they are
    // history-dependent (churn splits re-merge only on compaction), so
    // a verifier restored mid-history legitimately differs from a
    // fresh build — behaviour (FIB, rules, verdicts) must not.
    assert_eq!(rc.fib(), twin.fib(), "{ctx}: FIB diverged from never-crashed twin");
    assert_eq!(rc.num_fib_rules(), twin.num_fib_rules(), "{ctx}: rule count diverged");
    assert_eq!(rc.num_pairs(), twin.num_pairs(), "{ctx}: pair count diverged");
    assert_eq!(rc.policy_specs(), twin.policy_specs(), "{ctx}: verdicts diverged");
}

/// One chaos round: churn with a store fault armed, snapshot along the
/// way, crash, reopen, compare against the twin. Returns the reopened
/// verifier so rounds can chain on one state directory.
fn chaos_round(
    dir: &StateDir,
    mut rc: RealConfig,
    point: FaultPoint,
    fault_nth: u64,
    history: &mut Vec<BTreeMap<String, rc_netcfg::ast::DeviceConfig>>,
    round: usize,
) -> RealConfig {
    let guard = FaultPlan::new().error_on(point, fault_nth).install();
    for i in 0..4 {
        let cmd = Cmd::ToggleIface { dev: round * 5 + i * 3 + 1, iface: i };
        let Some(cs) = to_changeset(&cmd, &rc) else { continue };
        if rc.apply_change(&cs).is_ok() {
            history.push(rc.configs().clone());
        }
        assert!(!rc.needs_rebuild(), "round {round} change {i}: store fault poisoned");
        if i == 1 {
            // Mid-churn snapshot: may hit the armed fault; must fail
            // closed (state on disk stays a consistent prefix), never
            // panic or poison.
            let _ = rc.save_snapshot();
            assert!(!rc.needs_rebuild(), "round {round}: snapshot failure poisoned");
        }
    }
    drop(guard);

    // Crash: the verifier dies with no shutdown path. Reopen with the
    // last committed configurations as the fallback (the operator's
    // config files survive the crash even when the state dir did not).
    let fallback = rc.configs().clone();
    drop(rc);
    let fault_on_read = FaultPlan::new().error_on(point, 1).install();
    let (mut reopened, report) = RealConfig::open(&dir.0, fallback)
        .unwrap_or_else(|e| panic!("round {round} ({point:?}): recovery refused to start: {e}"));
    drop(fault_on_read);
    assert!(!reopened.needs_rebuild(), "round {round}: reopened verifier is poisoned");
    assert!(
        history.iter().any(|h| h == reopened.configs()),
        "round {round} ({point:?}): recovered configs match no committed state \
         (source {:?}, notes {:?})",
        report.source,
        report.notes
    );
    assert_matches_twin(&mut reopened, &format!("round {round} ({point:?})"));
    reopened
}

/// Every store fault point, exercised both during churn and during the
/// reopen itself, on one long-lived state directory.
#[test]
fn every_store_fault_point_recovers_to_the_twin() {
    let configs = build_configs(&ring(5), ProtocolChoice::Ospf);
    let dir = StateDir::new("rotate");
    let (mut rc, _) = RealConfig::new(configs.clone()).expect("ring verifies");
    standing_policies(&mut rc);
    rc.attach_state_dir(&dir.0).expect("state dir creatable");
    rc.save_snapshot().expect("initial snapshot writes");

    let mut history = vec![configs];
    for (round, &point) in FaultPoint::STORE.iter().enumerate() {
        rc = chaos_round(&dir, rc, point, 1, &mut history, round);
        // Re-arm durability for the next round if the fault killed it.
        if !rc.journaling() {
            let _ = rc.save_snapshot();
        }
    }

    // After all the chaos: a clean snapshot and reopen round-trips.
    rc.save_snapshot().expect("post-chaos snapshot writes");
    let fallback = rc.configs().clone();
    let expected_fib = rc.fib();
    drop(rc);
    let (reopened, report) = RealConfig::open(&dir.0, fallback).expect("clean reopen");
    assert_eq!(report.replayed, 0, "clean reopen has nothing to replay");
    assert_eq!(reopened.fib(), expected_fib, "clean reopen lost state");
}

/// A burst that exercises folding (one superseded write) without
/// netting out to a no-op.
fn sample_burst() -> Vec<realconfig::ChangeSet> {
    use realconfig::ChangeSet;
    vec![
        ChangeSet::link_cost("r000", "eth0", 50),
        ChangeSet::link_cost("r000", "eth0", 100),
        ChangeSet::link_failure("r001", "eth0"),
        ChangeSet::link_cost("r002", "eth1", 77),
    ]
}

/// A crash right after a coalesced commit: the whole burst must be ONE
/// checksummed journal record, and both replay modes (one apply per
/// record, coalesced) must reopen to the committed post-burst state.
#[test]
fn crash_mid_burst_replays_single_coalesced_record() {
    let configs = build_configs(&ring(5), ProtocolChoice::Ospf);
    let dir = StateDir::new("burst");
    let (mut rc, _) = RealConfig::new(configs).expect("ring verifies");
    standing_policies(&mut rc);
    rc.attach_state_dir(&dir.0).expect("state dir creatable");
    rc.save_snapshot().expect("initial snapshot writes");
    let pre_burst = rc.configs().clone();

    let burst = sample_burst();
    let report = rc.apply_coalesced(&burst).expect("burst verifies");
    assert_eq!(report.coalesced_changes, burst.len());
    assert_eq!(report.cancelled_ops, 1, "the superseded cost write folds away");
    let committed = rc.configs().clone();
    let expected_fib = rc.fib();
    drop(rc); // crash: no shutdown path

    // The fallback is the PRE-burst configs: reaching the post-burst
    // state proves the journal record carried the burst, not the
    // bottom-rung rebuild.
    for coalesce_replay in [false, true] {
        let (mut reopened, report) =
            RealConfig::open_opts(&dir.0, pre_burst.clone(), coalesce_replay)
                .expect("reopen after crash mid-burst");
        assert_eq!(
            report.replayed, 1,
            "a coalesced commit is exactly one journal record (coalesce={coalesce_replay})"
        );
        assert_eq!(
            reopened.configs(),
            &committed,
            "reopen (coalesce={coalesce_replay}) lost the burst"
        );
        assert_eq!(reopened.fib(), expected_fib, "FIB diverged (coalesce={coalesce_replay})");
        assert_matches_twin(&mut reopened, &format!("crash mid-burst (coalesce={coalesce_replay})"));
    }
}

/// A journal append torn mid-burst: the burst still commits in memory
/// (durability degrades, verification does not), and a subsequent crash
/// reopens to the pre-burst snapshot — the torn record is discarded
/// whole, never half-applied.
#[test]
fn torn_append_mid_burst_reopens_to_pre_burst_state() {
    let configs = build_configs(&ring(5), ProtocolChoice::Ospf);
    let dir = StateDir::new("torn-burst");
    let (mut rc, _) = RealConfig::new(configs).expect("ring verifies");
    standing_policies(&mut rc);
    rc.attach_state_dir(&dir.0).expect("state dir creatable");
    rc.save_snapshot().expect("initial snapshot writes");
    let pre_burst = rc.configs().clone();
    let pre_fib = rc.fib();

    let guard = FaultPlan::new().error_on(FaultPoint::StorePartialAppend, 1).install();
    let report = rc.apply_coalesced(&sample_burst());
    drop(guard);
    let report = report.expect("burst verifies in memory despite the torn append");
    assert_eq!(report.coalesced_changes, 4);
    assert!(!rc.needs_rebuild(), "journal failure must not poison the verifier");
    drop(rc); // crash

    let (mut reopened, report) =
        RealConfig::open(&dir.0, pre_burst.clone()).expect("reopen after torn append");
    assert_eq!(report.replayed, 0, "the torn record must not replay");
    assert_eq!(
        reopened.configs(),
        &pre_burst,
        "a torn coalesced record is discarded whole (all-or-nothing)"
    );
    assert_eq!(reopened.fib(), pre_fib);
    assert_matches_twin(&mut reopened, "torn append mid-burst");
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0usize..16, 0usize..4).prop_map(|(dev, iface)| Cmd::ToggleIface { dev, iface }),
            2 => (0usize..16, 0usize..4, prop_oneof![Just(1u32), Just(100)])
                .prop_map(|(dev, iface, cost)| Cmd::SetCost { dev, iface, cost }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::StaticDrop { dev, pfx }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::UnStatic { dev, pfx }),
        ],
        2..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For ANY (store fault point, arming delay, crash cadence,
    /// snapshot cadence, churn stream): the verifier is never poisoned
    /// by persistence I/O, every crash reopens to some committed state,
    /// and the reopened verifier equals the never-crashed twin.
    #[test]
    fn crashes_under_store_faults_recover_to_committed_state(
        cmds in arb_cmds(),
        point_idx in 0usize..FaultPoint::STORE.len(),
        fault_nth in 1u64..5,
        crash_every in 1usize..4,
        snap_every in 1usize..4,
    ) {
        let point = FaultPoint::STORE[point_idx];
        let configs = build_configs(&ring(5), ProtocolChoice::Ospf);
        let dir = StateDir::new("prop");
        let (mut rc, _) = RealConfig::new(configs.clone()).expect("ring verifies");
        standing_policies(&mut rc);
        rc.attach_state_dir(&dir.0).expect("state dir creatable");
        rc.save_snapshot().expect("initial snapshot writes");

        let mut history = vec![configs];
        let guard = FaultPlan::new().error_on(point, fault_nth).install();
        for (i, cmd) in cmds.iter().enumerate() {
            let Some(cs) = to_changeset(cmd, &rc) else { continue };
            match rc.apply_change(&cs) {
                Ok(_) => history.push(rc.configs().clone()),
                Err(_) if rc.needs_rebuild() => return, // divergence, covered elsewhere
                Err(_) => {}
            }
            prop_assert!(!rc.needs_rebuild(), "change {} poisoned under {:?}", i, point);

            if (i + 1) % snap_every == 0 {
                let _ = rc.save_snapshot();
                prop_assert!(!rc.needs_rebuild(), "snapshot {} poisoned under {:?}", i, point);
            }
            if (i + 1) % crash_every == 0 {
                let fallback = rc.configs().clone();
                drop(rc);
                let (reopened, report) = RealConfig::open(&dir.0, fallback).unwrap_or_else(
                    |e| panic!("crash {i} under {point:?}: recovery refused to start: {e}"),
                );
                rc = reopened;
                prop_assert!(!rc.needs_rebuild(), "crash {}: reopened poisoned", i);
                prop_assert!(
                    history.iter().any(|h| h == rc.configs()),
                    "crash {} under {:?}: recovered configs match no committed state \
                     (source {:?}, notes {:?})",
                    i, point, report.source, report.notes
                );
                assert_matches_twin(&mut rc, &format!("crash {i} under {point:?}"));
            }
        }
        drop(guard);

        // The survivor must still be able to write durable state and
        // come back from it cleanly once the fault clears.
        rc.save_snapshot().expect("post-chaos snapshot writes");
        let fallback = rc.configs().clone();
        let expected_fib = rc.fib();
        drop(rc);
        let (reopened, _) = RealConfig::open(&dir.0, fallback).expect("clean reopen");
        prop_assert_eq!(reopened.fib(), expected_fib, "clean reopen lost state");
    }
}
