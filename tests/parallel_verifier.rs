//! Verifier-level contract of the parallel policy-checking phase: a
//! panic on a pool worker mid-change is contained exactly like any
//! other pipeline panic (rolled back + poisoned, never a deadlock),
//! and a serial and a parallel verifier driven through the same change
//! stream report identical non-timing results.

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix};
use realconfig::{ChangeOp, ChangeReport, ChangeSet, Error, PolicyId, RealConfig};

fn build(threads: Option<usize>) -> (RealConfig, PolicyId) {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Bgp);
    let (mut rc, _) = RealConfig::new(configs).expect("fat tree verifies");
    rc.set_threads(threads);
    let id = rc
        .require_reachability("pod00-edge00", "pod01-edge00", host_prefix(2))
        .expect("devices exist");
    rc.recheck_policies();
    (rc, id)
}

fn link_restore(device: &str, iface: &str) -> ChangeSet {
    ChangeSet {
        ops: vec![ChangeOp::EnableInterface { device: device.into(), iface: iface.into() }],
    }
}

/// Everything in a [`ChangeReport`] except wall-clock timings and the
/// metrics snapshot (which contains latency histograms).
fn shape(r: &ChangeReport) -> impl PartialEq + std::fmt::Debug {
    (
        (r.lines_inserted, r.lines_deleted, r.fact_changes, r.dp_records),
        (r.rules_inserted, r.rules_removed, r.ec_moves, r.ec_splits, r.affected_ecs),
        (r.affected_pairs, r.changed_pairs, r.total_pairs, r.policies_checked),
        (r.newly_violated.clone(), r.newly_satisfied.clone(), r.recovered),
    )
}

#[test]
fn serial_and_parallel_verifiers_agree() {
    let (mut serial, sid) = build(Some(1));
    let (mut par, pid) = build(Some(4));

    let changes = [
        ChangeSet::link_failure("pod00-edge00", "eth0"),
        link_restore("pod00-edge00", "eth0"),
        ChangeSet::link_failure("pod00-aggr00", "eth0"),
        ChangeSet::link_failure("pod01-aggr00", "eth0"),
        link_restore("pod00-aggr00", "eth0"),
        link_restore("pod01-aggr00", "eth0"),
    ];
    for (i, cs) in changes.iter().enumerate() {
        let rs = serial.apply_change(cs).expect("serial change verifies");
        let rp = par.apply_change(cs).expect("parallel change verifies");
        assert_eq!(shape(&rs), shape(&rp), "change {i}: report shape");
        assert_eq!(serial.is_satisfied(sid), par.is_satisfied(pid), "change {i}: verdict");
        assert_eq!(serial.fib(), par.fib(), "change {i}: FIB");
        assert_eq!(serial.num_pairs(), par.num_pairs(), "change {i}: pairs");
    }
}

#[test]
fn worker_panic_poisons_and_rebuild_recovers() {
    // Silence the default hook for the expected injected panic only.
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX));
        if !injected {
            default(info);
        }
    }));

    let (mut rc, id) = build(Some(4));
    let (mut twin, tid) = build(Some(4));

    // Arm for whatever EC the change walks first — on whichever pool
    // worker the scheduler picks.
    rc_faults::arm_walk_panic_any();
    let change = ChangeSet::link_failure("pod00-edge00", "eth0");
    let msg = match rc.apply_change(&change) {
        Err(Error::Internal(msg)) => msg,
        other => panic!("expected Internal from worker panic, got: {other:?}"),
    };
    assert!(msg.starts_with(rc_faults::INJECTED_PANIC_PREFIX), "got: {msg:?}");
    rc_faults::disarm_walk_panic();

    // Contained like any stage panic: observables rolled back, verifier
    // poisoned; a rebuild (whose walks run on the pool again) recovers.
    assert_eq!(rc.configs(), twin.configs(), "configs rolled back");
    assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "verdict rolled back");
    assert!(rc.needs_rebuild(), "worker panic must poison");
    rc.rebuild().expect("rebuild succeeds");

    rc.apply_change(&change).expect("change verifies after rebuild");
    twin.apply_change(&change).expect("change verifies on twin");
    assert_eq!(rc.fib(), twin.fib(), "after post-rebuild change: FIB");
    assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "after post-rebuild change");
}
