//! Verifier-level contract of the parallel phases: a panic on a pool
//! worker mid-change — in a policy walk, a dataflow operator shard, or
//! an APKeep transfer chunk — is contained exactly like any other
//! pipeline panic (rolled back + poisoned, never a deadlocked
//! barrier), and a serial and a parallel verifier driven through the
//! same change stream report identical non-timing results.

use std::sync::{Mutex, Once};

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix};
use realconfig::{ChangeOp, ChangeReport, ChangeSet, Error, PolicyId, RealConfig};

/// The fault points are process-global one-shots, and every test here
/// drives changes through the stages that fire them — serialize so an
/// armed point cannot trip inside a concurrently running test.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Silence the default panic hook for injected-fault panics only.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX));
            if !injected {
                default(info);
            }
        }));
    });
}

fn build(threads: Option<usize>) -> (RealConfig, PolicyId) {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Bgp);
    let (mut rc, _) = RealConfig::new(configs).expect("fat tree verifies");
    rc.set_threads(threads);
    let id = rc
        .require_reachability("pod00-edge00", "pod01-edge00", host_prefix(2))
        .expect("devices exist");
    rc.recheck_policies();
    (rc, id)
}

fn link_restore(device: &str, iface: &str) -> ChangeSet {
    ChangeSet {
        ops: vec![ChangeOp::EnableInterface { device: device.into(), iface: iface.into() }],
    }
}

/// Everything in a [`ChangeReport`] except wall-clock timings and the
/// metrics snapshot (which contains latency histograms).
fn shape(r: &ChangeReport) -> impl PartialEq + std::fmt::Debug {
    (
        (r.lines_inserted, r.lines_deleted, r.fact_changes, r.dp_records),
        (r.rules_inserted, r.rules_removed, r.ec_moves, r.ec_splits, r.affected_ecs),
        (r.affected_pairs, r.changed_pairs, r.total_pairs, r.policies_checked),
        (r.newly_violated.clone(), r.newly_satisfied.clone(), r.recovered),
    )
}

#[test]
fn serial_and_parallel_verifiers_agree() {
    let _serial_tests = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (mut serial, sid) = build(Some(1));
    let (mut par, pid) = build(Some(4));

    let changes = [
        ChangeSet::link_failure("pod00-edge00", "eth0"),
        link_restore("pod00-edge00", "eth0"),
        ChangeSet::link_failure("pod00-aggr00", "eth0"),
        ChangeSet::link_failure("pod01-aggr00", "eth0"),
        link_restore("pod00-aggr00", "eth0"),
        link_restore("pod01-aggr00", "eth0"),
    ];
    for (i, cs) in changes.iter().enumerate() {
        let rs = serial.apply_change(cs).expect("serial change verifies");
        let rp = par.apply_change(cs).expect("parallel change verifies");
        assert_eq!(shape(&rs), shape(&rp), "change {i}: report shape");
        assert_eq!(serial.is_satisfied(sid), par.is_satisfied(pid), "change {i}: verdict");
        assert_eq!(serial.fib(), par.fib(), "change {i}: FIB");
        assert_eq!(serial.num_pairs(), par.num_pairs(), "change {i}: pairs");
    }
}

#[test]
fn worker_panic_poisons_and_rebuild_recovers() {
    let _serial_tests = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    quiet_injected_panics();

    let (mut rc, id) = build(Some(4));
    let (mut twin, tid) = build(Some(4));

    // Arm for whatever EC the change walks first — on whichever pool
    // worker the scheduler picks.
    rc_faults::arm_walk_panic_any();
    let change = ChangeSet::link_failure("pod00-edge00", "eth0");
    let msg = match rc.apply_change(&change) {
        Err(Error::Internal(msg)) => msg,
        other => panic!("expected Internal from worker panic, got: {other:?}"),
    };
    assert!(msg.starts_with(rc_faults::INJECTED_PANIC_PREFIX), "got: {msg:?}");
    rc_faults::disarm_walk_panic();

    // Contained like any stage panic: observables rolled back, verifier
    // poisoned; a rebuild (whose walks run on the pool again) recovers.
    assert_eq!(rc.configs(), twin.configs(), "configs rolled back");
    assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "verdict rolled back");
    assert!(rc.needs_rebuild(), "worker panic must poison");
    rc.rebuild().expect("rebuild succeeds");

    rc.apply_change(&change).expect("change verifies after rebuild");
    twin.apply_change(&change).expect("change verifies on twin");
    assert_eq!(rc.fib(), twin.fib(), "after post-rebuild change: FIB");
    assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "after post-rebuild change");
}

/// Drive `rc` into the armed one-shot shard panic at `site` and assert
/// the containment contract end to end: the panic surfaces as
/// [`Error::Internal`] carrying the injected marker (so the test fails
/// loudly if the parallel path never engaged), observables roll back to
/// the `twin`'s, the verifier is poisoned rather than deadlocked on a
/// barrier, and a rebuild — whose shards run on the pool again —
/// recovers to full agreement with the twin.
fn assert_shard_panic_contained(
    site: rc_faults::ShardSite,
    (mut rc, id): (RealConfig, PolicyId),
    (mut twin, tid): (RealConfig, PolicyId),
) {
    quiet_injected_panics();

    rc_faults::arm_shard_panic(site);
    let change = ChangeSet::link_failure("pod00-edge00", "eth0");
    let result = rc.apply_change(&change);
    // The point disarms itself when it fires; disarm defensively so a
    // failing assertion below cannot leave it armed for other tests.
    rc_faults::disarm_shard_panic(site);
    let msg = match result {
        Err(Error::Internal(msg)) => msg,
        other => panic!("expected Internal from {site:?} shard panic, got: {other:?}"),
    };
    assert!(msg.starts_with(rc_faults::INJECTED_PANIC_PREFIX), "got: {msg:?}");

    // Contained like any stage panic: observables rolled back, verifier
    // poisoned, and the pool barrier was released (we got here at all).
    assert_eq!(rc.configs(), twin.configs(), "configs rolled back");
    assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "verdict rolled back");
    assert!(rc.needs_rebuild(), "{site:?} shard panic must poison");
    rc.rebuild().expect("rebuild succeeds");

    rc.apply_change(&change).expect("change verifies after rebuild");
    twin.apply_change(&change).expect("change verifies on twin");
    assert_eq!(rc.fib(), twin.fib(), "after post-rebuild change: FIB");
    assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "after post-rebuild change");
}

/// The adaptive serial fallback must actually fire on small work items:
/// a single-link change on a k=4 fat tree routes far fewer than the
/// dispatch threshold's records per operator step and touches only a
/// handful of ECs, so a 4-worker verifier must inline that work (and
/// count it) rather than pay pool setup.
#[test]
fn small_work_items_are_inlined_not_dispatched() {
    let _serial_tests = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (mut rc, _) = build(Some(4));

    let change = ChangeSet::link_failure("pod00-edge00", "eth0");
    rc.apply_change(&change).expect("change verifies");

    let m = rc.metrics_snapshot();
    let inlined = m.counters.get("par.small_tasks_inlined").copied().unwrap_or(0);
    assert!(inlined > 0, "small change at 4 workers must take the inline fallback");
}

#[test]
fn dataflow_shard_panic_poisons_and_rebuild_recovers() {
    let _serial_tests = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The dataflow shard hook fires in every dispatch mode (serial,
    // inlined, pool), so the stock harness reaches it on the first
    // operator step of the change.
    assert_shard_panic_contained(rc_faults::ShardSite::Dataflow, build(Some(4)), build(Some(4)));
}

#[test]
fn apk_transfer_chunk_panic_poisons_and_rebuild_recovers() {
    let _serial_tests = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The parallel transfer prefilter only engages when the candidate
    // scan is long enough; disable the EC index so transfers scan the
    // full EC list, and check the workload actually clears the
    // threshold — otherwise the armed point would never be reached and
    // apply_change would succeed, failing the match above.
    let (mut rc, id) = build(Some(4));
    rc.set_ec_index_enabled(false);
    let (mut twin, tid) = build(Some(4));
    twin.set_ec_index_enabled(false);
    assert!(
        rc.num_ecs() >= 32,
        "workload too small to reach the parallel transfer path: {} ECs",
        rc.num_ecs()
    );
    assert_shard_panic_contained(rc_faults::ShardSite::ApkTransfer, (rc, id), (twin, tid));
}
