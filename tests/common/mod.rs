//! Shared harness for the whole-verifier soundness tests: the abstract
//! change-command language, its lowering to `ChangeSet`s against a live
//! verifier, and the incremental-vs-fresh oracle loop. Used by
//! `incremental_soundness.rs` (random command sequences) and
//! `regression_counterexamples.rs` (pinned inputs from
//! `incremental_soundness.proptest-regressions`).
#![allow(dead_code)]

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::host_prefix;
use realconfig::{ChangeOp, ChangeSet, RealConfig};

/// Suppress the default panic hook's noise for injected-fault panics
/// (they are expected and contained); everything else still prints.
pub fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX));
        if !injected {
            default(info);
        }
    }));
}

#[derive(Clone, Debug)]
pub enum Cmd {
    ToggleIface { dev: usize, iface: usize },
    SetCost { dev: usize, iface: usize, cost: u32 },
    SetLp { dev: usize, iface: usize, pref: u32 },
    StaticDrop { dev: usize, pfx: u32 },
    UnStatic { dev: usize, pfx: u32 },
}

pub fn to_changeset(cmd: &Cmd, rc: &RealConfig) -> Option<ChangeSet> {
    let devices: Vec<String> = rc.configs().keys().cloned().collect();
    let dev = |i: usize| devices[i % devices.len()].clone();
    let iface = |d: &str, i: usize| -> Option<String> {
        let cfg = &rc.configs()[d];
        let eths: Vec<_> = cfg.interfaces.iter().filter(|f| f.name.starts_with("eth")).collect();
        if eths.is_empty() {
            None
        } else {
            Some(eths[i % eths.len()].name.clone())
        }
    };
    let mut cs = ChangeSet::new();
    match cmd {
        Cmd::ToggleIface { dev: d, iface: i } => {
            let d = dev(*d);
            let i = iface(&d, *i)?;
            if rc.configs()[&d].interface(&i).unwrap().shutdown {
                cs.push(ChangeOp::EnableInterface { device: d, iface: i });
            } else {
                cs.push(ChangeOp::DisableInterface { device: d, iface: i });
            }
        }
        Cmd::SetCost { dev: d, iface: i, cost } => {
            let d = dev(*d);
            rc.configs()[&d].ospf.as_ref()?;
            let i = iface(&d, *i)?;
            cs.push(ChangeOp::SetOspfCost { device: d, iface: i, cost: *cost });
        }
        Cmd::SetLp { dev: d, iface: i, pref } => {
            let d = dev(*d);
            rc.configs()[&d].bgp.as_ref()?;
            let i = iface(&d, *i)?;
            cs.push(ChangeOp::SetLocalPref { device: d, iface: i, pref: *pref });
        }
        Cmd::StaticDrop { dev: d, pfx } => {
            let d = dev(*d);
            if rc.configs()[&d].static_routes.iter().any(|r| r.prefix == host_prefix(*pfx)) {
                return None;
            }
            cs.push(ChangeOp::AddStaticRoute {
                device: d,
                prefix: host_prefix(*pfx),
                next_hop: rc_netcfg::ast::NextHop::Drop,
            });
        }
        Cmd::UnStatic { dev: d, pfx } => {
            let d = dev(*d);
            if !rc.configs()[&d].static_routes.iter().any(|r| r.prefix == host_prefix(*pfx)) {
                return None;
            }
            cs.push(ChangeOp::RemoveStaticRoute { device: d, prefix: host_prefix(*pfx) });
        }
    }
    Some(cs)
}

pub fn run(proto: ProtocolChoice, topo: rc_netcfg::topology::Topology, cmds: Vec<Cmd>) {
    let configs = build_configs(&topo, proto);
    let Ok((mut rc, _)) = RealConfig::new(configs) else { return };

    // A few standing policies so verdict tracking is exercised.
    let mut policies = Vec::new();
    let names: Vec<String> = rc.configs().keys().cloned().collect();
    for (i, s) in names.iter().take(3).enumerate() {
        let d = &names[names.len() - 1 - i];
        if let Some(id) = rc.require_reachability(s, d, host_prefix((names.len() - 1 - i) as u32))
        {
            policies.push((s.clone(), d.clone(), names.len() - 1 - i, id));
        }
    }
    rc.recheck_policies();

    for cmd in &cmds {
        let Some(cs) = to_changeset(cmd, &rc) else { continue };
        if rc.apply_change(&cs).is_err() {
            return; // divergence: covered elsewhere
        }

        // Oracle: fresh verifier from the same configurations.
        let (mut fresh, _) = RealConfig::new(rc.configs().clone()).expect("fresh build");
        assert_eq!(rc.fib(), fresh.fib(), "FIB mismatch after {cmd:?}");
        assert_eq!(rc.num_pairs(), fresh.num_pairs(), "pair count mismatch after {cmd:?}");
        for (s, d, pi, id) in &policies {
            let fid = fresh.require_reachability(s, d, host_prefix(*pi as u32)).unwrap();
            fresh.recheck_policies();
            assert_eq!(
                rc.is_satisfied(*id),
                fresh.is_satisfied(fid),
                "policy {s}→{d} verdict mismatch after {cmd:?}"
            );
        }
    }
}
