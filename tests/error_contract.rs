//! Satellite contract: every [`realconfig::Error`] variant leaves the
//! verifier's *observable* state — configs, facts, warnings, FIB,
//! policy verdicts — at the last good set. A never-failed twin verifier
//! is the oracle: after each rejected change the failed verifier must
//! look exactly like the twin (for pre-pipeline failures, down to the
//! FIB; for mid-pipeline faults, observables roll back and poisoning +
//! rebuild restores full equality).

use std::collections::BTreeMap;

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{host_prefix, ring};
use rc_netcfg::DeviceConfig;
use realconfig::{ChangeSet, Error, PolicyId, RealConfig};

fn net() -> BTreeMap<String, DeviceConfig> {
    build_configs(&ring(4), ProtocolChoice::Ospf)
}

/// Build a verifier with one standing reachability policy.
fn build() -> (RealConfig, PolicyId) {
    let (mut rc, _) = RealConfig::new(net()).expect("ring verifies");
    let id = rc.require_reachability("r000", "r002", host_prefix(2)).expect("devices exist");
    rc.recheck_policies();
    (rc, id)
}

/// Suppress the default panic hook's noise for injected-fault panics
/// (they are expected and contained); everything else still prints.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with(rc_faults::INJECTED_PANIC_PREFIX));
        if !injected {
            default(info);
        }
    }));
}

/// Observable state must match the twin byte-for-byte.
fn assert_observables_equal(rc: &RealConfig, twin: &RealConfig, ctx: &str) {
    assert_eq!(rc.configs(), twin.configs(), "{ctx}: configs");
    assert_eq!(rc.facts(), twin.facts(), "{ctx}: facts");
    assert_eq!(rc.warnings(), twin.warnings(), "{ctx}: warnings");
}

/// Pipeline state (FIB, pairs, verdict) must match the twin too — only
/// guaranteed for pre-pipeline failures or after a rebuild.
fn assert_pipeline_equal(
    rc: &RealConfig,
    twin: &RealConfig,
    id: PolicyId,
    tid: PolicyId,
    ctx: &str,
) {
    assert_eq!(rc.fib(), twin.fib(), "{ctx}: FIB");
    assert_eq!(rc.num_pairs(), twin.num_pairs(), "{ctx}: pair count");
    assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "{ctx}: verdict");
}

#[test]
fn change_error_leaves_everything_untouched() {
    let (mut rc, id) = build();
    let (twin, tid) = build();

    let bad = ChangeSet::link_failure("no-such-device", "eth0");
    match rc.apply_change(&bad) {
        Err(Error::Change(_)) => {}
        other => panic!("expected Change error, got: {other:?}"),
    }
    assert!(!rc.needs_rebuild(), "a change error must not poison");
    assert_observables_equal(&rc, &twin, "after change error");
    assert_pipeline_equal(&rc, &twin, id, tid, "after change error");
    assert_eq!(rc.num_ecs(), twin.num_ecs(), "after change error: ECs");

    // Still fully operational.
    rc.apply_change(&ChangeSet::link_failure("r001", "eth1")).expect("good change verifies");
}

#[test]
fn injected_engine_fault_rolls_back_byte_identically() {
    let (mut rc, id) = build();
    let (mut twin, tid) = build();

    // Fault at the stage 1 boundary: fires before the engine ingests
    // the delta, so observable state must be *byte-identical* to the
    // twin — including the FIB and EC partition.
    let guard = rc_faults::FaultPlan::new()
        .error_on(rc_faults::FaultPoint::EngineApply, 1)
        .install();
    let change = ChangeSet::link_failure("r001", "eth1");
    match rc.apply_change(&change) {
        Err(Error::Divergence(rc_dataflow::EvalError::InjectedFault)) => {}
        other => panic!("expected injected Divergence, got: {other:?}"),
    }
    drop(guard);

    assert_observables_equal(&rc, &twin, "after injected engine fault");
    assert_pipeline_equal(&rc, &twin, id, tid, "after injected engine fault");
    assert_eq!(rc.num_ecs(), twin.num_ecs(), "after injected engine fault: ECs");

    // The verifier conservatively poisons on any Divergence; rebuild
    // and continue — it must track the twin through further changes.
    assert!(rc.needs_rebuild());
    rc.rebuild().expect("rebuild succeeds");
    rc.apply_change(&change).expect("change verifies after rebuild");
    twin.apply_change(&change).expect("change verifies on twin");
    assert_observables_equal(&rc, &twin, "after post-rebuild change");
    assert_pipeline_equal(&rc, &twin, id, tid, "after post-rebuild change");
}

#[test]
fn injected_model_panic_rolls_back_observables_and_poisons() {
    quiet_injected_panics();
    let (mut rc, id) = build();
    let (mut twin, tid) = build();

    let guard = rc_faults::FaultPlan::new()
        .panic_on(rc_faults::FaultPoint::ApkBatch, 1)
        .install();
    let change = ChangeSet::link_failure("r001", "eth1");
    let msg = match rc.apply_change(&change) {
        Err(Error::Internal(msg)) => msg,
        other => panic!("expected Internal, got: {other:?}"),
    };
    drop(guard);
    assert!(
        msg.starts_with(rc_faults::INJECTED_PANIC_PREFIX),
        "panic payload surfaces in the error: {msg:?}"
    );

    // Configs, facts, warnings and verdicts roll back even though the
    // panic hit mid-pipeline (stage 1 had already run).
    assert_observables_equal(&rc, &twin, "after injected model panic");
    assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "verdict rolls back");

    // Mid-pipeline fault ⇒ poisoned; applies are refused until rebuilt.
    assert!(rc.needs_rebuild());
    match rc.apply_change(&change) {
        Err(Error::Poisoned) => {}
        other => panic!("expected Poisoned, got: {other:?}"),
    }
    rc.rebuild().expect("rebuild succeeds");
    assert_pipeline_equal(&rc, &twin, id, tid, "after rebuild");

    rc.apply_change(&change).expect("change verifies after rebuild");
    twin.apply_change(&change).expect("change verifies on twin");
    assert_observables_equal(&rc, &twin, "after post-rebuild change");
    assert_pipeline_equal(&rc, &twin, id, tid, "after post-rebuild change");
}

#[test]
fn injected_policy_panic_restores_verdicts() {
    quiet_injected_panics();
    let (mut rc, id) = build();
    let (mut twin, tid) = build();

    let guard = rc_faults::FaultPlan::new()
        .panic_on(rc_faults::FaultPoint::PolicyCheck, 1)
        .install();
    // This change breaks r000→r002 reachability when committed; the
    // injected stage 3 panic must leave the verdict at the last good
    // value instead.
    let change = ChangeSet::link_failure("r001", "eth1");
    match rc.apply_change(&change) {
        Err(Error::Internal(_)) => {}
        other => panic!("expected Internal, got: {other:?}"),
    }
    drop(guard);

    assert_observables_equal(&rc, &twin, "after injected policy panic");
    assert_eq!(
        rc.is_satisfied(id),
        twin.is_satisfied(tid),
        "verdict restored to pre-change value"
    );
    assert!(rc.needs_rebuild());

    rc.rebuild().expect("rebuild succeeds");
    rc.apply_change(&change).expect("change verifies after rebuild");
    twin.apply_change(&change).expect("change verifies on twin");
    assert_pipeline_equal(&rc, &twin, id, tid, "after post-rebuild change");
}

#[test]
fn poisoned_error_is_itself_stateless() {
    quiet_injected_panics();
    let (mut rc, id) = build();
    let (twin, tid) = build();

    let guard = rc_faults::FaultPlan::new()
        .panic_on(rc_faults::FaultPoint::ApkBatch, 1)
        .install();
    let change = ChangeSet::link_failure("r001", "eth1");
    let _ = rc.apply_change(&change);
    drop(guard);
    assert!(rc.needs_rebuild());

    // Repeated refusals don't change anything either.
    for _ in 0..3 {
        match rc.apply_change(&change) {
            Err(Error::Poisoned) => {}
            other => panic!("expected Poisoned, got: {other:?}"),
        }
        assert_observables_equal(&rc, &twin, "while poisoned");
        assert_eq!(rc.is_satisfied(id), twin.is_satisfied(tid), "verdict while poisoned");
    }
}
