//! Pinned counterexamples from
//! `incremental_soundness.proptest-regressions`.
//!
//! The `cc <seed>` lines only replay under the upstream proptest RNG;
//! the "shrinks to" comments give the exact shrunk inputs. Both
//! historical failures were a single `ToggleIface` whose incremental
//! application diverged from a from-scratch rebuild (stale dataflow
//! facts after an interface flap). Each is replayed here across every
//! protocol/topology combination the random suite covers, through the
//! same oracle loop.

mod common;

use common::{run, Cmd};
use rc_netcfg::gen::ProtocolChoice;
use rc_netcfg::topology::{grid, ring};

/// `cc b17e6506…`: dev index 5 — wraps to device 0 on a 5-ring, hits
/// device 5 on the 3x3 grid.
fn toggle_dev5() -> Vec<Cmd> {
    vec![Cmd::ToggleIface { dev: 5, iface: 0 }]
}

/// `cc ef1dc278…`: dev index 9 — wraps to device 4 on a 5-ring, wraps
/// to device 0 on the 3x3 grid.
fn toggle_dev9() -> Vec<Cmd> {
    vec![Cmd::ToggleIface { dev: 9, iface: 0 }]
}

#[test]
fn toggle_iface_dev5_ospf_ring() {
    run(ProtocolChoice::Ospf, ring(5), toggle_dev5());
}

#[test]
fn toggle_iface_dev5_bgp_ring() {
    run(ProtocolChoice::Bgp, ring(5), toggle_dev5());
}

#[test]
fn toggle_iface_dev5_ospf_grid() {
    run(ProtocolChoice::Ospf, grid(3, 3), toggle_dev5());
}

#[test]
fn toggle_iface_dev5_bgp_grid() {
    run(ProtocolChoice::Bgp, grid(3, 3), toggle_dev5());
}

#[test]
fn toggle_iface_dev5_rip_ring() {
    run(ProtocolChoice::Rip, ring(5), toggle_dev5());
}

#[test]
fn toggle_iface_dev9_ospf_ring() {
    run(ProtocolChoice::Ospf, ring(5), toggle_dev9());
}

#[test]
fn toggle_iface_dev9_bgp_ring() {
    run(ProtocolChoice::Bgp, ring(5), toggle_dev9());
}

#[test]
fn toggle_iface_dev9_ospf_grid() {
    run(ProtocolChoice::Ospf, grid(3, 3), toggle_dev9());
}

#[test]
fn toggle_iface_dev9_bgp_grid() {
    run(ProtocolChoice::Bgp, grid(3, 3), toggle_dev9());
}

#[test]
fn toggle_iface_dev9_rip_ring() {
    run(ProtocolChoice::Rip, ring(5), toggle_dev9());
}
