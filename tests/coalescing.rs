//! Coalescing soundness: folding a burst of changes into one
//! transactional apply ([`RealConfig::apply_coalesced`]) must reach
//! exactly the state of applying the same changes one at a time —
//! configurations, FIB, grouped rules, pair counts and policy verdicts
//! alike, on both predicate backends.
//!
//! EC *counts* are deliberately not compared: the partition's
//! refinement is history-dependent (transient splits differ with batch
//! boundaries) while the behaviour it encodes — FIB, rules, reachable
//! pairs, verdicts — must not be.

mod common;

use common::{to_changeset, Cmd};
use proptest::prelude::*;
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{grid, host_prefix, ring, Topology};
use realconfig::{PredKind, RealConfig, UpdateOrder};

fn run_pair(proto: ProtocolChoice, topo: Topology, cmds: Vec<Cmd>, backend: PredKind) {
    let configs = build_configs(&topo, proto);
    let Ok((mut serial, _)) =
        RealConfig::with_order_backend(configs.clone(), UpdateOrder::InsertFirst, backend)
    else {
        return;
    };
    let Ok((mut batch, _)) =
        RealConfig::with_order_backend(configs, UpdateOrder::InsertFirst, backend)
    else {
        return;
    };

    // The same standing policies on both verifiers, so verdict
    // tracking is part of the comparison.
    let names: Vec<String> = serial.configs().keys().cloned().collect();
    let mut policies = Vec::new();
    for (i, s) in names.iter().take(3).enumerate() {
        let d = &names[names.len() - 1 - i];
        let pfx = host_prefix((names.len() - 1 - i) as u32);
        if let (Some(a), Some(b)) =
            (serial.require_reachability(s, d, pfx), batch.require_reachability(s, d, pfx))
        {
            policies.push((a, b));
        }
    }
    serial.recheck_policies();
    batch.recheck_policies();

    // Drive the serial verifier one change at a time, collecting the
    // exact `ChangeSet`s it applied (the command lowering is
    // state-aware, so the sets must come from the evolving serial
    // state).
    let mut burst = Vec::new();
    for cmd in &cmds {
        let Some(cs) = to_changeset(cmd, &serial) else { continue };
        if serial.apply_change(&cs).is_err() {
            return; // divergence: covered elsewhere
        }
        burst.push(cs);
    }
    if burst.is_empty() {
        return;
    }

    // The identical burst, folded into one transactional apply.
    let report = batch.apply_coalesced(&burst).expect("coalesced burst verifies");
    assert_eq!(report.coalesced_changes, burst.len());

    assert_eq!(serial.configs(), batch.configs(), "configs diverge after {cmds:?}");
    assert_eq!(serial.fib(), batch.fib(), "FIB diverges after {cmds:?}");
    assert_eq!(
        serial.num_fib_rules(),
        batch.num_fib_rules(),
        "grouped rule count diverges after {cmds:?}"
    );
    assert_eq!(serial.num_rules(), batch.num_rules(), "model rules diverge after {cmds:?}");
    assert_eq!(serial.num_pairs(), batch.num_pairs(), "pair count diverges after {cmds:?}");
    for (a, b) in &policies {
        assert_eq!(
            serial.is_satisfied(*a),
            batch.is_satisfied(*b),
            "policy verdict diverges after {cmds:?}"
        );
    }
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0usize..16, 0usize..4).prop_map(|(dev, iface)| Cmd::ToggleIface { dev, iface }),
            2 => (0usize..16, 0usize..4, prop_oneof![Just(1u32), Just(100)])
                .prop_map(|(dev, iface, cost)| Cmd::SetCost { dev, iface, cost }),
            2 => (0usize..16, 0usize..4, prop_oneof![Just(50u32), Just(150)])
                .prop_map(|(dev, iface, pref)| Cmd::SetLp { dev, iface, pref }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::StaticDrop { dev, pfx }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::UnStatic { dev, pfx }),
        ],
        2..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ospf_ring_bdd(cmds in arb_cmds()) {
        run_pair(ProtocolChoice::Ospf, ring(5), cmds, PredKind::Bdd);
    }

    #[test]
    fn ospf_grid_atoms(cmds in arb_cmds()) {
        run_pair(ProtocolChoice::Ospf, grid(3, 3), cmds, PredKind::Atoms);
    }

    #[test]
    fn bgp_ring_bdd(cmds in arb_cmds()) {
        run_pair(ProtocolChoice::Bgp, ring(5), cmds, PredKind::Bdd);
    }

    #[test]
    fn bgp_grid_atoms(cmds in arb_cmds()) {
        run_pair(ProtocolChoice::Bgp, grid(3, 3), cmds, PredKind::Atoms);
    }
}
