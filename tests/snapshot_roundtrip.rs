//! Snapshot round-trip soundness: a verifier restored from its own
//! durable state must be indistinguishable from the live verifier that
//! wrote it — same configurations, FIB, model shape, policy verdicts —
//! and must keep verifying identically afterwards. Exercised across
//! both predicate backends and, property-style, across arbitrary churn
//! prefixes split between the snapshot and the journal.

mod common;

use common::{to_changeset, Cmd};
use proptest::prelude::*;
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{host_prefix, ring};
use realconfig::{PredKind, RealConfig, RestoreSource, UpdateOrder};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique-per-use scratch state directory, removed on drop.
struct StateDir(PathBuf);

impl StateDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rc-roundtrip-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StateDir(dir)
    }
}

impl Drop for StateDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The standing policies every verifier in this suite registers, in
/// the same deterministic order.
fn standing_policies(rc: &mut RealConfig) {
    let names: Vec<String> = rc.configs().keys().cloned().collect();
    for (i, s) in names.iter().take(3).enumerate() {
        let di = names.len() - 1 - i;
        let d = names[di].clone();
        rc.require_reachability(s, &d, host_prefix(di as u32));
    }
    rc.recheck_policies();
}

/// Everything observable through the public API must match.
fn assert_equivalent(live: &RealConfig, restored: &RealConfig, ctx: &str) {
    assert_eq!(live.configs(), restored.configs(), "{ctx}: configs diverged");
    assert_eq!(live.fib(), restored.fib(), "{ctx}: FIB diverged");
    assert_eq!(live.warnings(), restored.warnings(), "{ctx}: warnings diverged");
    assert_eq!(live.num_fib_rules(), restored.num_fib_rules(), "{ctx}: rule count diverged");
    assert_eq!(live.num_ecs(), restored.num_ecs(), "{ctx}: EC count diverged");
    assert_eq!(live.num_pairs(), restored.num_pairs(), "{ctx}: pair count diverged");
    assert_eq!(live.policy_specs(), restored.policy_specs(), "{ctx}: verdicts diverged");
    assert_eq!(live.backend(), restored.backend(), "{ctx}: backend diverged");
}

/// Snapshot → restore → continue verifying, on one backend.
fn roundtrip_on(backend: PredKind) {
    let configs = build_configs(&ring(6), ProtocolChoice::Ospf);
    let (mut live, _) =
        RealConfig::with_order_backend(configs.clone(), UpdateOrder::InsertFirst, backend)
            .expect("ring verifies");
    standing_policies(&mut live);

    let dir = StateDir::new(&format!("{backend:?}"));
    live.attach_state_dir(&dir.0).expect("state dir creatable");
    live.save_snapshot().expect("snapshot writes");

    let (mut restored, report) =
        RealConfig::open(&dir.0, configs).expect("restore never refuses to start");
    assert!(
        matches!(report.source, RestoreSource::Snapshot { .. }),
        "expected a snapshot restore, got {:?} (notes: {:?})",
        report.source,
        report.notes
    );
    assert_eq!(report.replayed, 0, "fresh journal has nothing to replay");
    assert_equivalent(&live, &restored, "after restore");

    // The restored verifier is not a dead copy: the same churn applied
    // to both sides must keep them in lockstep, reports included.
    for i in 0..4 {
        let cmd = Cmd::ToggleIface { dev: i * 3 + 1, iface: i };
        let Some(cs) = to_changeset(&cmd, &live) else { continue };
        let live_report = live.apply_change(&cs).expect("live change verifies");
        let restored_report = restored.apply_change(&cs).expect("restored change verifies");
        // Timings aside, the incremental reports must agree field for
        // field: both sides saw the same deltas through every stage.
        let shape = |r: &realconfig::ChangeReport| {
            (
                (r.lines_inserted, r.lines_deleted, r.fact_changes),
                (r.rules_inserted, r.rules_removed),
                (r.ec_moves, r.ec_splits, r.affected_ecs),
                (r.affected_pairs, r.changed_pairs, r.total_pairs, r.policies_checked),
                (r.newly_violated.clone(), r.newly_satisfied.clone(), r.warnings.clone()),
            )
        };
        assert_eq!(
            shape(&live_report),
            shape(&restored_report),
            "change {i}: incremental reports diverged after restore"
        );
        assert_equivalent(&live, &restored, &format!("after change {i}"));
    }
}

#[test]
fn snapshot_roundtrip_is_lossless_on_the_bdd_backend() {
    roundtrip_on(PredKind::Bdd);
}

#[test]
fn snapshot_roundtrip_is_lossless_on_the_atoms_backend() {
    roundtrip_on(PredKind::Atoms);
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0usize..16, 0usize..4).prop_map(|(dev, iface)| Cmd::ToggleIface { dev, iface }),
            2 => (0usize..16, 0usize..4, prop_oneof![Just(1u32), Just(100)])
                .prop_map(|(dev, iface, cost)| Cmd::SetCost { dev, iface, cost }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::StaticDrop { dev, pfx }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::UnStatic { dev, pfx }),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For ANY churn stream and ANY split point: snapshot after the
    /// prefix, journal the suffix, and a restore (snapshot + replay)
    /// must equal the live verifier that never went down — on either
    /// predicate backend.
    #[test]
    fn restore_replays_any_churn_split_losslessly(
        cmds in arb_cmds(),
        split_seed in 0usize..64,
        atoms in any::<bool>(),
    ) {
        let backend = if atoms { PredKind::Atoms } else { PredKind::Bdd };
        let configs = build_configs(&ring(5), ProtocolChoice::Ospf);
        let (mut live, _) =
            RealConfig::with_order_backend(configs.clone(), UpdateOrder::InsertFirst, backend)
                .expect("ring verifies");
        standing_policies(&mut live);

        let dir = StateDir::new("prop");
        live.attach_state_dir(&dir.0).expect("state dir creatable");

        // Commits before `split` land only in the snapshot; commits
        // after it land only in the journal.
        let split = split_seed % (cmds.len() + 1);
        let mut journaled = 0usize;
        for (i, cmd) in cmds.iter().enumerate() {
            if i == split {
                live.save_snapshot().expect("snapshot writes");
            }
            let Some(cs) = to_changeset(cmd, &live) else { continue };
            match live.apply_change(&cs) {
                Ok(_) => {
                    if i >= split {
                        journaled += 1;
                    }
                }
                // Divergence poisoning is covered by its own suite;
                // this property is about fault-free round-trips.
                Err(_) if live.needs_rebuild() => return,
                Err(_) => {}
            }
        }
        if split == cmds.len() {
            live.save_snapshot().expect("snapshot writes");
        }

        let (restored, report) =
            RealConfig::open(&dir.0, configs).expect("restore never refuses to start");
        prop_assert!(
            matches!(report.source, RestoreSource::Snapshot { .. }),
            "expected a snapshot restore, got {:?} (notes: {:?})",
            report.source,
            report.notes
        );
        prop_assert_eq!(report.replayed, journaled, "replay covers exactly the journaled suffix");
        prop_assert_eq!(report.discarded_corrupt, 0, "fault-free journal has no corrupt records");
        assert_equivalent(&live, &restored, "after split restore");
    }
}
