//! End-to-end checks of the telemetry layer: every pipeline stage must
//! contribute at least one metric to the snapshot that comes back in
//! verification reports, and the snapshot must serialize to JSON (the
//! CLI's `--metrics` dump and the bench result files rely on it).

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::ring;
use realconfig::{ChangeSet, RealConfig};

fn build() -> (RealConfig, realconfig::FullReport) {
    let configs = build_configs(&ring(4), ProtocolChoice::Ospf);
    RealConfig::new(configs).expect("ring verifies")
}

#[test]
fn full_report_has_metrics_from_every_stage() {
    let (_rc, full) = build();
    let m = &full.metrics;

    // Stage 1: per-operator dataflow work counters.
    assert!(
        m.counters.keys().any(|k| k.starts_with("dataflow.work.")),
        "no dataflow.work.* counters in {:?}",
        m.counters.keys().collect::<Vec<_>>()
    );
    assert!(m.counters["dataflow.records"] > 0);
    assert!(m.counters["dataflow.epochs"] >= 1);

    // Stage 2: EC model state.
    assert!(m.gauges["apkeep.ecs"] > 0);
    assert!(m.gauges["apkeep.rules"] > 0);
    assert!(m.counters["apkeep.rules_applied"] > 0);

    // Stage 3: policy checker.
    assert!(m.counters.contains_key("policy.affected_ecs"));
    assert!(m.gauges["policy.pairs"] > 0);
    assert_eq!(m.histograms["policy.check_full_us"].count, 1);
}

#[test]
fn change_report_metrics_accumulate() {
    let (mut rc, full) = build();
    let report = rc.apply_change(&ChangeSet::link_failure("r001", "eth1")).expect("verifies");
    let m = &report.metrics;

    // Counters are cumulative since construction: the change's work
    // lands on top of the initial build's.
    assert!(m.counters["dataflow.records"] > full.metrics.counters["dataflow.records"]);
    assert!(m.counters["dataflow.epochs"] > full.metrics.counters["dataflow.epochs"]);
    assert!(m.counters["apkeep.rules_applied"] >= full.metrics.counters["apkeep.rules_applied"]);
    // The incremental check path was timed exactly once.
    assert_eq!(m.histograms["policy.check_incremental_us"].count, 1);
    // The live snapshot accessor agrees with the report.
    assert_eq!(rc.metrics_snapshot(), report.metrics);
}

#[test]
fn compaction_records_before_and_after_trace_sizes() {
    let (mut rc, _) = build();
    rc.apply_change(&ChangeSet::link_failure("r001", "eth1")).expect("verifies");
    rc.compact();
    let m = rc.metrics_snapshot();
    let before = m.counters["dataflow.compact.records_before"];
    let after = m.counters["dataflow.compact.records_after"];
    assert!(before > 0, "compaction saw no trace records");
    assert!(after <= before, "compaction grew the traces: {after} > {before}");
}

/// Telemetry keys are registered lazily inside the paths that produce
/// them: a verifier driven through plain applies and compaction — no
/// ingest queue, no coalescing, no threshold trigger — must carry none
/// of the `queue.*` / `coalesce.*` / `compact.trigger.*` keys, keeping
/// committed gate baselines stable for runs that never batch.
#[test]
fn plain_runs_carry_no_batching_keys() {
    let (mut rc, _) = build();
    rc.apply_change(&ChangeSet::link_failure("r001", "eth1")).expect("verifies");
    rc.compact();
    let m = rc.metrics_snapshot();
    let all_keys = m
        .counters
        .keys()
        .chain(m.gauges.keys())
        .chain(m.histograms.keys());
    for key in all_keys {
        for prefix in ["queue.", "coalesce.", "compact.trigger."] {
            assert!(
                !key.starts_with(prefix),
                "plain run registered batching key {key:?}"
            );
        }
    }

    // The coalescing path registers its keys on first use.
    rc.apply_coalesced(&[ChangeSet::link_failure("r002", "eth0")]).expect("verifies");
    let m = rc.metrics_snapshot();
    assert!(m.counters.contains_key("coalesce.batches"));
}

#[test]
fn snapshot_serializes_to_json_with_stage_counters() {
    let (rc, _) = build();
    let json = serde_json::to_string_pretty(&rc.metrics_snapshot()).expect("serializes");
    for needle in ["dataflow.work.", "apkeep.ecs", "policy.affected_ecs"] {
        assert!(json.contains(needle), "{needle:?} missing from JSON:\n{json}");
    }
}
