//! Packet-trace tests: the trace must agree with the FIB and policy
//! verdicts, report matched rules, and show drops, denials and loops.

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix, ring};
use realconfig::{ChangeOp, ChangeSet, HopAction, Packet, RealConfig};

fn pkt_to(prefix_idx: u32) -> Packet {
    Packet {
        dst_ip: host_prefix(prefix_idx).host(9).0,
        proto: 6,
        dst_port: 80,
        ..Default::default()
    }
}

#[test]
fn trace_follows_shortest_path_and_reports_rules() {
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Ospf);
    let (rc, _) = RealConfig::new(configs).unwrap();
    let trace = rc.trace_packet("pod00-edge00", pkt_to(7)).unwrap();

    // Delivered at the destination edge switch, nowhere else.
    assert_eq!(trace.delivered_at, vec!["pod03-edge01".to_string()]);
    assert!(!trace.loops);
    // The first hop matched the /24 FIB rule.
    let first = &trace.hops[0];
    assert_eq!(first.device, "pod00-edge00");
    let (prio, m) = first.fib_rule.as_ref().expect("matched a rule");
    assert_eq!(*prio, 24);
    assert_eq!(format!("{m:?}"), format!("{:?}", rc_apkeep::RuleMatch::DstPrefix(host_prefix(7))));
    // ECMP at the edge: two uplinks.
    match &first.action {
        HopAction::Forwarded { ifaces, next } => {
            assert_eq!(ifaces.len(), 2, "edge ECMP over both uplinks");
            assert_eq!(next.len(), 2);
        }
        other => panic!("expected a forward, got {other:?}"),
    }
    // Render without panicking and mention the destination.
    let text = trace.to_string();
    assert!(text.contains("DELIVERED"), "{text}");
}

#[test]
fn trace_shows_drop_when_no_route() {
    let configs = build_configs(&ring(4), ProtocolChoice::Ospf);
    let (rc, _) = RealConfig::new(configs).unwrap();
    // An address nobody originates.
    let trace = rc
        .trace_packet("r000", Packet { dst_ip: 0x08080808, ..Default::default() })
        .unwrap();
    assert!(trace.delivered_at.is_empty());
    assert_eq!(trace.hops.len(), 1);
    assert!(matches!(trace.hops[0].action, HopAction::Dropped));
    assert!(trace.hops[0].fib_rule.is_none(), "no rule matches 8.8.8.8");
}

#[test]
fn trace_shows_acl_denial() {
    let configs = build_configs(&ring(4), ProtocolChoice::Ospf);
    let (mut rc, _) = RealConfig::new(configs).unwrap();
    let mut cs = ChangeSet::new();
    cs.push(ChangeOp::AddAclEntry {
        device: "r001".into(),
        acl: "BLOCK".into(),
        entry: rc_netcfg::ast::AclEntry {
            seq: 10,
            action: rc_netcfg::ast::AclAction::Deny,
            proto: None,
            src: realconfig::Prefix::DEFAULT,
            dst: host_prefix(2),
            dst_ports: None,
        },
    });
    for iface in ["eth0", "eth1"] {
        cs.push(ChangeOp::BindAcl {
            device: "r001".into(),
            iface: iface.into(),
            dir: realconfig::AclDir::In,
            acl: "BLOCK".into(),
        });
    }
    rc.apply_change(&cs).unwrap();

    let trace = rc.trace_packet("r000", pkt_to(2)).unwrap();
    // One branch is denied entering r001; the ring's other direction
    // still delivers via r003 → r002.
    let denied: Vec<_> = trace
        .hops
        .iter()
        .filter(|h| matches!(h.action, HopAction::Denied { .. }))
        .collect();
    assert_eq!(denied.len(), 1);
    assert_eq!(denied[0].device, "r001");
    assert_eq!(trace.delivered_at, vec!["r002".to_string()]);
    assert!(trace.to_string().contains("DENIED"));
}

#[test]
fn trace_detects_loops() {
    // Static routes pointing at each other: r000 → r001 → r000 for an
    // external prefix.
    let mut configs = build_configs(&ring(4), ProtocolChoice::Ospf);
    let external: realconfig::Prefix = "9.9.9.0/24".parse().unwrap();
    let mut cs = ChangeSet::new();
    // r000's eth0 faces r001 (and vice versa) by generator order.
    cs.push(ChangeOp::AddStaticRoute {
        device: "r000".into(),
        prefix: external,
        next_hop: rc_netcfg::ast::NextHop::Interface("eth0".into()),
    });
    cs.push(ChangeOp::AddStaticRoute {
        device: "r001".into(),
        prefix: external,
        next_hop: rc_netcfg::ast::NextHop::Interface("eth0".into()),
    });
    cs.apply(&mut configs).unwrap();
    let (rc, _) = RealConfig::new(configs).unwrap();

    let trace = rc
        .trace_packet("r000", Packet { dst_ip: 0x09090901, ..Default::default() })
        .unwrap();
    assert!(trace.loops, "mutual static routes must trace as a loop:\n{trace}");
    assert!(trace.delivered_at.is_empty());
}

#[test]
fn trace_from_unknown_device_is_none() {
    let configs = build_configs(&ring(3), ProtocolChoice::Ospf);
    let (rc, _) = RealConfig::new(configs).unwrap();
    assert!(rc.trace_packet("nope", Packet::default()).is_none());
}
