//! Chaos suite for the self-healing verifier: drive a k=4 fat-tree
//! through a long interface-churn stream while a deterministic
//! [`rc_faults::FaultPlan`] kills every Nth change at a rotating
//! pipeline stage. The verifier must recover each time
//! ([`RealConfig::apply_change_or_rebuild`]), never stay poisoned, and
//! remain equivalent to a fault-free from-scratch oracle.

mod common;

use common::{quiet_injected_panics, to_changeset, Cmd};
use proptest::prelude::*;
use rc_faults::{FaultGuard, FaultPlan, FaultPoint};
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix, ring};
use realconfig::{PolicyId, RealConfig};

/// One-shot fault plan for chaos round `round`, rotating through the
/// three stage boundaries and both failure modes.
fn rotating_fault(round: usize) -> FaultGuard {
    let point = FaultPoint::PIPELINE[round % FaultPoint::PIPELINE.len()];
    let plan = FaultPlan::new();
    // Stage 1 has an error channel; stages 2 and 3 only fail by panic.
    let plan = if point == FaultPoint::EngineApply && round.is_multiple_of(2) {
        plan.error_on(point, 1)
    } else {
        plan.panic_on(point, 1)
    };
    plan.install()
}

/// Register the standing policies used for verdict tracking; the
/// oracle registers the same ones in the same order.
fn standing_policies(rc: &mut RealConfig) -> Vec<(String, String, u32, PolicyId)> {
    let names: Vec<String> = rc.configs().keys().cloned().collect();
    let mut policies = Vec::new();
    for (i, s) in names.iter().take(3).enumerate() {
        let di = names.len() - 1 - i;
        let d = &names[di];
        if let Some(id) = rc.require_reachability(s, d, host_prefix(di as u32)) {
            policies.push((s.clone(), d.clone(), di as u32, id));
        }
    }
    rc.recheck_policies();
    policies
}

/// Check the churned verifier against a fault-free from-scratch oracle.
fn assert_matches_oracle(
    rc: &RealConfig,
    policies: &[(String, String, u32, PolicyId)],
    ctx: usize,
) {
    let (mut fresh, _) =
        RealConfig::new(rc.configs().clone()).expect("oracle build from committed configs");
    assert_eq!(rc.fib(), fresh.fib(), "FIB mismatch after change {ctx}");
    assert_eq!(rc.num_pairs(), fresh.num_pairs(), "pair count mismatch after change {ctx}");
    for (s, d, pi, id) in policies {
        let fid = fresh.require_reachability(s, d, host_prefix(*pi)).expect("oracle policy");
        fresh.recheck_policies();
        assert_eq!(
            rc.is_satisfied(*id),
            fresh.is_satisfied(fid),
            "policy {s}→{d} verdict mismatch after change {ctx}"
        );
    }
}

#[test]
fn fat_tree_churn_with_rotating_faults_self_heals() {
    quiet_injected_panics();
    let configs = build_configs(&fat_tree(4), ProtocolChoice::Ospf);
    let (mut rc, _) = RealConfig::new(configs).expect("fat-tree verifies");
    let policies = standing_policies(&mut rc);
    assert!(!policies.is_empty(), "fat-tree has standing policies");

    const CHANGES: usize = 24;
    const FAULT_EVERY: usize = 3;
    let mut faults_fired = 0usize;
    let mut recovered = 0usize;
    for i in 0..CHANGES {
        // Deterministic interface churn (toggle shutdown back and
        // forth across the topology).
        let cmd = Cmd::ToggleIface { dev: i * 7 + 3, iface: i * 5 + 1 };
        let Some(cs) = to_changeset(&cmd, &rc) else { continue };

        let guard = (i % FAULT_EVERY == 0).then(|| rotating_fault(i / FAULT_EVERY));
        let report = rc
            .apply_change_or_rebuild(&cs)
            .unwrap_or_else(|e| panic!("change {i} must self-heal, got: {e}"));
        if let Some(g) = guard {
            faults_fired += rc_faults::injected_count() as usize;
            drop(g);
        }
        if report.recovered {
            recovered += 1;
        }
        assert!(!rc.needs_rebuild(), "change {i} left the verifier poisoned");
        assert_matches_oracle(&rc, &policies, i);
    }
    assert!(faults_fired > 0, "the chaos plan never fired");
    assert_eq!(recovered, faults_fired, "every fault went through the rebuild fallback");

    // Recovery telemetry adds up.
    let snap = rc.metrics_snapshot();
    assert_eq!(snap.counters.get("verifier.rebuilds").copied(), Some(recovered as u64));
    assert_eq!(snap.counters.get("verifier.rollbacks").copied(), Some(recovered as u64));
    let h = snap.histograms.get("verifier.rebuild_us").expect("rebuild latency histogram");
    assert_eq!(h.count, recovered as u64);
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0usize..16, 0usize..4).prop_map(|(dev, iface)| Cmd::ToggleIface { dev, iface }),
            2 => (0usize..16, 0usize..4, prop_oneof![Just(1u32), Just(100)])
                .prop_map(|(dev, iface, cost)| Cmd::SetCost { dev, iface, cost }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::StaticDrop { dev, pfx }),
            1 => (0usize..16, 0u32..6).prop_map(|(dev, pfx)| Cmd::UnStatic { dev, pfx }),
        ],
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For ANY (fault point, fault mode, single or double fault,
    /// change stream): `apply_change_or_rebuild` never returns with
    /// the verifier still poisoned, and the committed state always
    /// matches a fault-free from-scratch oracle. The double-fault case
    /// kills the rebuild fallback too — the verifier must then heal
    /// back to the last good configurations and surface the original
    /// error, still un-poisoned.
    #[test]
    fn recovery_never_leaves_a_poisoned_verifier(
        point in 0usize..3,
        panic_mode in 0usize..2,
        double in 0usize..2,
        cmds in arb_cmds(),
    ) {
        quiet_injected_panics();
        let configs = build_configs(&ring(5), ProtocolChoice::Ospf);
        let (mut rc, _) = RealConfig::new(configs).expect("ring verifies");
        let policies = standing_policies(&mut rc);
        let point = FaultPoint::PIPELINE[point];

        for (i, cmd) in cmds.iter().enumerate() {
            let Some(cs) = to_changeset(cmd, &rc) else { continue };
            // Fresh one-shot plan per change: fault the incremental
            // path, and in the double case the rebuild fallback too.
            let plan = if panic_mode == 1 || point != FaultPoint::EngineApply {
                FaultPlan::new().panic_on(point, 1)
            } else {
                FaultPlan::new().error_on(point, 1)
            };
            let plan = if double == 1 { plan.panic_on(point, 2) } else { plan };
            let guard = plan.install();
            match rc.apply_change_or_rebuild(&cs) {
                // Single fault: recovered via rebuild. Double fault:
                // healed back to last-good and the original error
                // surfaced. Both end un-poisoned.
                Ok(_) => {}
                Err(realconfig::Error::Change(_)) => {}
                Err(realconfig::Error::Divergence(_) | realconfig::Error::Internal(_)) => {
                    prop_assert!(double == 1, "single fault must self-heal, not surface");
                }
                Err(e) => panic!("unexpected failure after {cmd:?}: {e}"),
            }
            drop(guard);
            prop_assert!(!rc.needs_rebuild(), "poisoned after change {i}: {cmd:?}");
            assert_matches_oracle(&rc, &policies, i);
        }
    }
}
