//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::gen`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded
//! via SplitMix64 — not the upstream ChaCha12, so seeded streams differ
//! from real `rand`, but they are deterministic per seed, which is all
//! the workspace relies on.

/// Types that can be sampled uniformly over their whole domain.
pub trait Standard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The raw generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Ranges a value can be drawn from uniformly (the subset of
/// `rand::distributions::uniform::SampleRange` this workspace needs).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_u128(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw in `[0, span)` by widening rejection-free multiply.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // 64-bit multiply-shift is unbiased enough for test workloads and
    // exact for spans that divide 2^64; spans here are tiny.
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

/// The user-facing convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::SeedableRng` for the one constructor the workspace
/// uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded with SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Mirrors `rand::seq::SliceRandom` (shuffle and choose only).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = r.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
