//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` for
//! plain named-field structs, parsed by hand from the token stream (no
//! syn/quote available offline).
//!
//! Supported shape:
//!
//! ```ignore
//! #[derive(Serialize)]
//! struct Name {
//!     a: u32,
//!     #[serde(with = "module")] b: Duration,   // module::serialize(&b, s)
//!     #[serde(rename = "c2")] c: usize,
//! }
//! ```
//!
//! Generics, enums and tuple structs are rejected with a compile error
//! naming this vendored macro, so a future API expansion fails loudly
//! rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

struct Field {
    name: String,
    json_key: String,
    with: Option<String>,
    ty: String,
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => {
            return Err(format!(
                "vendored serde_derive only supports structs, got {other:?}"
            ))
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, got {other:?}")),
    };

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "vendored serde_derive does not support generics (struct {name})"
            ))
        }
        other => {
            return Err(format!(
                "vendored serde_derive needs named fields (struct {name}, got {other:?})"
            ))
        }
    };

    let fields = parse_fields(body)?;

    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n"
    ));
    out.push_str(&format!(
        "#[allow(unused_mut)] let mut __st = \
         ::serde::Serializer::serialize_struct(__s, {name:?}, {})?;\n",
        fields.len()
    ));
    for f in &fields {
        let key = &f.json_key;
        let fname = &f.name;
        match &f.with {
            None => out.push_str(&format!(
                "::serde::SerializeStruct::serialize_field(&mut __st, {key:?}, &self.{fname})?;\n"
            )),
            Some(module) => {
                let ty = &f.ty;
                out.push_str(&format!(
                    "{{\n\
                     struct __SerdeWith<'__a> {{ __v: &'__a {ty} }}\n\
                     impl<'__a> ::serde::Serialize for __SerdeWith<'__a> {{\n\
                     fn serialize<__S2: ::serde::Serializer>(&self, __s2: __S2) \
                     -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
                     {module}::serialize(self.__v, __s2)\n\
                     }}\n}}\n\
                     ::serde::SerializeStruct::serialize_field(&mut __st, {key:?}, \
                     &__SerdeWith {{ __v: &self.{fname} }})?;\n\
                     }}\n"
                ))
            }
        }
    }
    out.push_str("::serde::SerializeStruct::end(__st)\n}\n}\n");
    out.parse().map_err(|e| format!("generated impl failed to parse: {e:?}"))
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let mut with = None;
        let mut rename = None;
        // Field attributes (doc comments and #[serde(...)]).
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    let group = match iter.next() {
                        Some(TokenTree::Group(g)) => g,
                        other => return Err(format!("malformed attribute: {other:?}")),
                    };
                    parse_serde_attr(group.stream(), &mut with, &mut rename)?;
                }
                _ => break,
            }
        }
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field {name}, got {other:?}")),
        }
        // Type: tokens up to a top-level comma. Track angle-bracket
        // depth so `BTreeMap<String, u64>` survives.
        let mut ty = String::new();
        let mut angle: i32 = 0;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    iter.next();
                    break;
                }
                Some(tt) => {
                    if let TokenTree::Punct(p) = tt {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            _ => {}
                        }
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&tt.to_string());
                    iter.next();
                }
            }
        }
        let json_key = rename.unwrap_or_else(|| name.clone());
        fields.push(Field { name, json_key, with, ty });
    }
    Ok(fields)
}

/// Inspect one attribute body (the tokens inside `#[...]`); record
/// `with`/`rename` values when it is a `serde(...)` attribute.
fn parse_serde_attr(
    attr: TokenStream,
    with: &mut Option<String>,
    rename: &mut Option<String>,
) -> Result<(), String> {
    let mut iter = attr.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()), // doc comment or unrelated attribute
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        other => return Err(format!("malformed #[serde] attribute: {other:?}")),
    };
    let mut it = inner.into_iter();
    while let Some(tt) = it.next() {
        let TokenTree::Ident(key) = &tt else { continue };
        let key = key.to_string();
        // Expect `= "literal"` next.
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
            _ => {
                return Err(format!(
                    "vendored serde_derive only supports with/rename = \"..\" (saw `{key}`)"
                ))
            }
        }
        let value = match it.next() {
            Some(TokenTree::Literal(l)) => {
                let s = l.to_string();
                s.trim_matches('"').to_string()
            }
            other => return Err(format!("expected string literal after {key}=, got {other:?}")),
        };
        match key.as_str() {
            "with" => *with = Some(value),
            "rename" => *rename = Some(value),
            other => {
                return Err(format!(
                    "vendored serde_derive does not support #[serde({other} = ...)]"
                ))
            }
        }
        // Optional trailing comma.
        if let Some(TokenTree::Punct(p)) = it.next() {
            if p.as_char() != ',' {
                return Err("malformed #[serde] attribute".to_string());
            }
        }
    }
    Ok(())
}
