//! Offline stand-in for `serde` (serialization only).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of serde's data model it uses: the [`Serialize`]
//! and [`Serializer`] traits, compound-serialization traits for
//! structs, sequences and string-keyed maps, and a derive macro
//! (re-exported from the local `serde_derive`) supporting plain structs
//! with optional `#[serde(with = "module")]` field attributes.
//!
//! Deserialization is intentionally absent — the workspace parses JSON
//! through `serde_json::Value` directly.

pub use serde_derive::Serialize;

/// A value that can drive a [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The output side of the data model. A strict subset of real serde's
/// `Serializer`: primitives, strings, options, sequences, structs and
/// string-keyed maps.
pub trait Serializer: Sized {
    type Ok;
    type Error: std::fmt::Debug + std::fmt::Display;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: ?Sized + Serialize>(self, v: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
}

pub trait SerializeSeq {
    type Ok;
    type Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStruct {
    type Ok;
    type Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        v: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeMap {
    type Ok;
    type Error;
    fn serialize_entry<V: ?Sized + Serialize>(&mut self, key: &str, v: &V)
        -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Mirrors `serde::ser` for code written against the real crate layout.
pub mod ser {
    pub use crate::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, Serializer};
}

macro_rules! impl_ser_int {
    (signed: $($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
    (unsigned: $($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_ser_int!(signed: i8, i16, i32, i64, isize);
impl_ser_int!(unsigned: u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u128(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for v in self {
            seq.serialize_element(v)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for v in self {
            seq.serialize_element(v)?;
        }
        seq.end()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k.as_ref(), v)?;
        }
        map.end()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&str, &V)> = self.iter().map(|(k, v)| (k.as_ref(), v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        let mut map = s.serialize_map(Some(entries.len()))?;
        for (k, v) in entries {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
