//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the strategy-combinator subset of the proptest API its test
//! suites use: `proptest!`, `prop_compose!`, `prop_oneof!`, the
//! `prop_assert*` macros, `Strategy` with `prop_map`/`prop_recursive`/
//! `boxed`, `Just`, `any`, integer-range strategies, tuple strategies,
//! `prop::collection::vec` and `prop::option::of`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case prints its fully generated inputs
//!   (`Debug`) and the deterministic case seed, then re-panics.
//! - **Deterministic.** Case seeds derive from the test's module path,
//!   name and case index, so every run explores the same inputs.
//! - **Regression files are not replayed.** `*.proptest-regressions`
//!   seeds index into the real proptest PRNG and cannot be reproduced
//!   here; known counterexamples are pinned as explicit unit tests
//!   instead (see `tests/regressions.rs` files in this workspace).

use std::fmt::Debug;
use std::rc::Rc;

pub mod test_runner {
    /// Deterministic xoshiro256** generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Seed for one (test, case) pair: FNV-1a over the test name,
        /// mixed with the case index.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed(h ^ ((case as u64) << 32 | case as u64))
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (the `cases` knob only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value: Clone + Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Clone + Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
    }

    /// Recursive strategies: `depth` rounds of wrapping `self` (the
    /// leaf) with `branch`. The extra size parameters of the real API
    /// are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let b = branch(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // 1-in-4 chance of bottoming out early at each level.
                if rng.below(4) == 0 {
                    l.generate(rng)
                } else {
                    b.generate(rng)
                }
            }));
        }
        cur
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map { inner: self.inner.clone(), f: self.f.clone() }
    }
}

impl<S: Strategy, U: Clone + Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Weighted choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies

/// Full-domain generation (`any::<T>()`).
pub trait Arbitrary: Clone + Debug + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);
impl_tuple_strategy!(A B C D E F);
impl_tuple_strategy!(A B C D E F G);
impl_tuple_strategy!(A B C D E F G H);
impl_tuple_strategy!(A B C D E F G H I);
impl_tuple_strategy!(A B C D E F G H I J);

/// String strategies from pattern literals. Supports the tiny pattern
/// subset used in this workspace: `\PC` (any printable char), `.`,
/// literal characters, and quantifiers `{m,n}`, `*`, `+`, `?` applied
/// to the preceding token.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    #[derive(Clone)]
    enum Tok {
        Printable,
        AnyChar,
        Lit(char),
    }

    // Printable pool biased toward config-file-looking noise.
    const POOL: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ\
                        0123456789 .,:;!#/\\-_()[]{}<>\"'=+*%@~^|?&µλ東";

    let mut toks: Vec<Tok> = Vec::new();
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();

    let emit = |tok: &Tok, rng: &mut TestRng, out: &mut String| match tok {
        Tok::Printable | Tok::AnyChar => {
            let pool: Vec<char> = POOL.chars().collect();
            out.push(pool[rng.below(pool.len() as u64) as usize]);
        }
        Tok::Lit(c) => out.push(*c),
    };

    while let Some(c) = chars.next() {
        let tok = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    // \PC — "not a control character".
                    chars.next();
                    Tok::Printable
                }
                Some('p') => {
                    chars.next();
                    Tok::Printable
                }
                Some(other) => Tok::Lit(other),
                None => break,
            },
            '.' => Tok::AnyChar,
            '{' => {
                // Quantifier on the previous token.
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                let (lo, hi) = match spec.split_once(',') {
                    Some((a, b)) => {
                        (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(8))
                    }
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                };
                let prev = toks.pop().expect("quantifier without preceding token");
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    emit(&prev, rng, &mut out);
                }
                continue;
            }
            '*' | '+' | '?' => {
                let (lo, hi) = match c {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                };
                let prev = toks.pop().expect("quantifier without preceding token");
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    emit(&prev, rng, &mut out);
                }
                continue;
            }
            other => Tok::Lit(other),
        };
        // Flush the previous token (tokens are emitted lazily so a
        // following quantifier can grab them).
        if let Some(prev) = toks.pop() {
            emit(&prev, rng, &mut out);
        }
        toks.push(tok);
    }
    if let Some(prev) = toks.pop() {
        emit(&prev, rng, &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// Collections

pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { elem: self.elem.clone(), size: self.size }
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            OptionStrategy { inner: self.inner.clone() }
        }
    }

    /// `None` one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace as test code writes it.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// `proptest! { #![proptest_config(..)] #[test] fn name(a in strat, b: ty) {..} .. }`
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! {
                cfg = ($cfg);
                name = $name;
                pats = ();
                strats = ();
                params = ($($params)*);
                body = $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // `pat in strategy, ...`
    (cfg = ($cfg:expr); name = $name:ident; pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = ($p:ident in $s:expr, $($rest:tt)+); body = $body:block) => {
        $crate::__proptest_case! { cfg = ($cfg); name = $name; pats = ($($pat)* $p);
            strats = ($($strat;)* $s;); params = ($($rest)+); body = $body }
    };
    // `pat in strategy` (final)
    (cfg = ($cfg:expr); name = $name:ident; pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = ($p:ident in $s:expr $(,)?); body = $body:block) => {
        $crate::__proptest_case! { cfg = ($cfg); name = $name; pats = ($($pat)* $p);
            strats = ($($strat;)* $s;); params = (); body = $body }
    };
    // `pat: Type, ...` sugar for `pat in any::<Type>(), ...`
    (cfg = ($cfg:expr); name = $name:ident; pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = ($p:ident : $t:ty, $($rest:tt)+); body = $body:block) => {
        $crate::__proptest_case! { cfg = ($cfg); name = $name; pats = ($($pat)* $p);
            strats = ($($strat;)* $crate::any::<$t>();); params = ($($rest)+); body = $body }
    };
    // `pat: Type` (final)
    (cfg = ($cfg:expr); name = $name:ident; pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = ($p:ident : $t:ty $(,)?); body = $body:block) => {
        $crate::__proptest_case! { cfg = ($cfg); name = $name; pats = ($($pat)* $p);
            strats = ($($strat;)* $crate::any::<$t>();); params = (); body = $body }
    };
    // All parameters munched: emit the runner.
    (cfg = ($cfg:expr); name = $name:ident; pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = (); body = $body:block) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        let __test_name = concat!(module_path!(), "::", stringify!($name));
        for __case in 0..__cfg.cases {
            let mut __rng = $crate::test_runner::TestRng::for_case(__test_name, __case);
            let __values = ( $( $crate::Strategy::generate(&($strat), &mut __rng), )* );
            let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                let ( $($pat,)* ) = ::std::clone::Clone::clone(&__values);
                $body
            }));
            if let Err(__e) = __result {
                eprintln!(
                    "proptest failure: {} case #{} of {}\ninputs: {:#?}",
                    __test_name, __case, __cfg.cases, __values
                );
                ::std::panic::resume_unwind(__e);
            }
        }
    }};
}

/// `prop_compose! { fn name(args)(a in strat, ...) -> Type { body } }`
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)($($params:tt)*) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::__prop_compose_body! { pats = (); strats = (); params = ($($params)*); body = $body }
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_compose_body {
    (pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = ($p:ident in $s:expr, $($rest:tt)+); body = $body:block) => {
        $crate::__prop_compose_body! { pats = ($($pat)* $p); strats = ($($strat;)* $s;);
            params = ($($rest)+); body = $body }
    };
    (pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = ($p:ident in $s:expr $(,)?); body = $body:block) => {
        $crate::__prop_compose_body! { pats = ($($pat)* $p); strats = ($($strat;)* $s;);
            params = (); body = $body }
    };
    (pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = ($p:ident : $t:ty, $($rest:tt)+); body = $body:block) => {
        $crate::__prop_compose_body! { pats = ($($pat)* $p);
            strats = ($($strat;)* $crate::any::<$t>();); params = ($($rest)+); body = $body }
    };
    (pats = ($($pat:pat)*); strats = ($($strat:expr;)*);
     params = ($p:ident : $t:ty $(,)?); body = $body:block) => {
        $crate::__prop_compose_body! { pats = ($($pat)* $p);
            strats = ($($strat;)* $crate::any::<$t>();); params = (); body = $body }
    };
    (pats = ($($pat:pat)*); strats = ($($strat:expr;)*); params = (); body = $body:block) => {
        $crate::Strategy::prop_map(
            ( $($strat,)* ),
            move |( $($pat,)* )| $body
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_cases() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(TestRng::for_case("x::y", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::for_case("t", 0);
        let s = (0u32..5, 1u8..=3, any::<bool>());
        for _ in 0..200 {
            let (a, b, _) = s.generate(&mut rng);
            assert!(a < 5);
            assert!((1..=3).contains(&b));
        }
    }

    #[test]
    fn oneof_weights_cover_all_arms() {
        let mut rng = TestRng::for_case("t2", 0);
        let s = prop_oneof![
            3 => Just(0u32),
            1 => Just(1u32),
        ];
        let mut seen = [0u32; 2];
        for _ in 0..400 {
            seen[s.generate(&mut rng) as usize] += 1;
        }
        assert!(seen[0] > seen[1]);
        assert!(seen[1] > 0);
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::for_case("t3", 0);
        let s = prop::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn pattern_strategy_generates_within_length() {
        let mut rng = TestRng::for_case("t4", 0);
        let s: &'static str = "\\PC{0,200}";
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.chars().count() <= 200);
            assert!(v.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum T {
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u32..4).prop_map(T::Leaf);
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_case("t5", 0);
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 5 + 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_works_with_mixed_params(a in 0u32..10, b: bool, c in prop::collection::vec(0u8..3, 1..4)) {
            prop_assert!(a < 10);
            let _ = b;
            prop_assert!(!c.is_empty() && c.len() < 4);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u32..5, b in 10u32..20) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy(p in arb_pair()) {
            prop_assert!(p.0 < 5 && (10..20).contains(&p.1));
        }
    }
}
