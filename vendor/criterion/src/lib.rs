//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the benchmark-harness API its `harness = false` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! `criterion_group!` and `criterion_main!`. No statistics — each
//! benchmark runs `sample_size` timed iterations after one warm-up and
//! prints the mean, so `cargo bench` compiles and produces usable
//! numbers without the real crate's analysis machinery.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}


impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size: 10 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_bench(&id.to_string(), 10, f);
    }

    /// Accepted for API compatibility; configuration is fixed.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    pub fn finish(self) {}
}

/// A benchmark id with a function name and a parameter label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    samples: usize,
    total_iters: u64,
    total_nanos: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up round, untimed.
        black_box(f());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.total_nanos += t.elapsed().as_nanos();
            self.total_iters += 1;
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, total_iters: 0, total_nanos: 0 };
    f(&mut b);
    if b.total_iters > 0 {
        let mean = b.total_nanos / b.total_iters as u128;
        println!("bench {label:<50} {:>12} ns/iter ({} samples)", mean, b.total_iters);
    } else {
        println!("bench {label:<50} (no samples)");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g.
            // `--bench`); accepted and ignored. `--test` means "run as
            // a test": execute one sample only is still fine.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0u32;
        group.bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| count += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(count, 4);
    }
}
