//! Offline stand-in for `serde_json`: serialization of anything
//! implementing the vendored [`serde::Serialize`] to compact or pretty
//! JSON, and a [`Value`] type with a recursive-descent parser for the
//! read side.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, Serializer};

/// JSON error (serialization or parse).
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization

/// Serialize to compact JSON.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize(Ser { out: &mut out, pretty: false, level: 0 })?;
    Ok(out)
}

/// Serialize to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize(Ser { out: &mut out, pretty: true, level: 0 })?;
    Ok(out)
}

/// Serialize pretty JSON into an `io::Write`.
pub fn to_writer_pretty<W: std::io::Write, T: ?Sized + Serialize>(
    mut w: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    w.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

struct Ser<'a> {
    out: &'a mut String,
    pretty: bool,
    level: usize,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shared compound-writer state for arrays and objects.
struct Compound<'a> {
    out: &'a mut String,
    pretty: bool,
    level: usize,
    first: bool,
    close: char,
}

impl<'a> Compound<'a> {
    fn begin(ser: Ser<'a>, open: char, close: char) -> Self {
        ser.out.push(open);
        Compound { out: ser.out, pretty: ser.pretty, level: ser.level + 1, first: true, close }
    }

    fn item_prefix(&mut self) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.level {
                self.out.push_str("  ");
            }
        }
    }

    fn finish(self) {
        if self.pretty && !self.first {
            self.out.push('\n');
            for _ in 0..self.level - 1 {
                self.out.push_str("  ");
            }
        }
        self.out.push(self.close);
    }

    fn value_ser(&mut self) -> Ser<'_> {
        Ser { out: self.out, pretty: self.pretty, level: self.level }
    }
}

impl<'a> Serializer for Ser<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeMap = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u128(self, v: u128) -> Result<()> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        if v.is_finite() {
            // Match serde_json: integral floats keep a ".0" suffix.
            if v == v.trunc() && v.abs() < 1e15 {
                self.out.push_str(&format!("{v:.1}"));
            } else {
                self.out.push_str(&v.to_string());
            }
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, v: &T) -> Result<()> {
        v.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>> {
        Ok(Compound::begin(self, '[', ']'))
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>> {
        Ok(Compound::begin(self, '{', '}'))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>> {
        Ok(Compound::begin(self, '{', '}'))
    }
}

impl<'a> SerializeSeq for Compound<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<()> {
        self.item_prefix();
        v.serialize(self.value_ser())
    }

    fn end(self) -> Result<()> {
        self.finish();
        Ok(())
    }
}

impl<'a> SerializeStruct for Compound<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, key: &'static str, v: &T) -> Result<()> {
        self.item_prefix();
        write_escaped(self.out, key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        v.serialize(self.value_ser())
    }

    fn end(self) -> Result<()> {
        self.finish();
        Ok(())
    }
}

impl<'a> SerializeMap for Compound<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<V: ?Sized + Serialize>(&mut self, key: &str, v: &V) -> Result<()> {
        self.item_prefix();
        write_escaped(self.out, key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        v.serialize(self.value_ser())
    }

    fn end(self) -> Result<()> {
        self.finish();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Value + parser

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Parse a JSON document from bytes.
pub fn from_slice(bytes: &[u8]) -> Result<Value> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Parse a JSON document from a string.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser { s: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && (self.s[self.pos] as char).is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.s.len() {
                                return Err(Error("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.s[self.pos..self.pos + 4])
                                .map_err(|e| Error(e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    if end > self.s.len() {
                        return Err(Error("truncated UTF-8".into()));
                    }
                    let chunk = std::str::from_utf8(&self.s[start..end])
                        .map_err(|e| Error(e.to_string()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Number).map_err(|e| Error(e.to_string()))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("expected ',' or ']', got {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(Error(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
    }

    #[test]
    fn pretty_object() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(to_string_pretty(&m).unwrap(), "{\n  \"a\": 1,\n  \"b\": 2\n}");
    }

    #[test]
    fn parse_nested() {
        let v = from_str(r#"{"a": [1, 2.5, "x"], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_str(), Some("x"));
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["b"]["d"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn serialize_then_parse() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![10u64, 20]);
        let s = to_string_pretty(&m).unwrap();
        let v = from_str(&s).unwrap();
        assert_eq!(v["k"][1].as_u64(), Some(20));
    }
}
