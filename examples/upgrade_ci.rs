//! Continuous-integration-style upgrade planning (paper §2, "Planning
//! large-scale changes"): roll an ACL deployment across every edge
//! switch of a fat tree in small steps, incrementally verifying after
//! each step. A bug planted mid-plan is caught the moment it is
//! introduced — not after the whole plan is done — and the fix is
//! confirmed by a newly-satisfied report.
//!
//! Run with: `cargo run --example upgrade_ci`

use rc_netcfg::ast::{AclAction, AclEntry};
use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix};
use realconfig::{AclDir, ChangeOp, ChangeSet, PacketClass, Policy, Prefix, RealConfig};

fn main() {
    let k = 4;
    let topo = fat_tree(k);
    println!(
        "Fat tree k={k}: {} devices, {} links. Goal: deny external TFTP (udp/69) at every edge \
         switch, without breaking reachability.",
        topo.num_devices(),
        topo.num_links()
    );
    let configs = build_configs(&topo, ProtocolChoice::Ospf);
    let edges: Vec<String> =
        configs.keys().filter(|d| d.contains("edge")).cloned().collect();

    let (mut rc, full) = RealConfig::new(configs).expect("initial configs verify");
    println!("Initial full verification: {:?}\n", full.dp_gen + full.model_update + full.policy_check);

    // Standing intent: HTTP from pod00-edge00 must keep reaching every
    // other edge switch's subnet. (Flow-level intent: the TFTP filter
    // being deployed must not disturb it.)
    let src = rc.node("pod00-edge00").unwrap();
    let mut reach = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        if e == "pod00-edge00" {
            continue;
        }
        let dst = rc.node(e).unwrap();
        let id = rc.add_policy(Policy::Reachability {
            src,
            dst,
            class: PacketClass::Flow {
                proto: Some(6),
                dst_prefix: Some(host_prefix(i as u32)),
                dst_port: Some(80),
            },
        });
        reach.push((e.clone(), id));
    }
    rc.recheck_policies();
    assert!(reach.iter().all(|(_, id)| rc.is_satisfied(*id)));
    println!("{} reachability intents registered and satisfied.\n", reach.len());

    let tftp_entry = |seq: u32| AclEntry {
        seq,
        action: AclAction::Deny,
        proto: Some(17),
        src: Prefix::DEFAULT,
        dst: Prefix::DEFAULT,
        dst_ports: Some((69, 69)),
    };

    let mut total_verify = std::time::Duration::ZERO;
    for (step, edge) in edges.iter().enumerate() {
        let mut cs = ChangeSet::new();
        cs.push(ChangeOp::AddAclEntry {
            device: edge.clone(),
            acl: "NO-TFTP".into(),
            entry: tftp_entry(10),
        });
        // THE PLANTED BUG: on one switch, the operator fat-fingers a
        // deny-everything entry (missed the protocol qualifier).
        if edge == "pod02-edge00" {
            cs.push(ChangeOp::AddAclEntry {
                device: edge.clone(),
                acl: "NO-TFTP".into(),
                entry: AclEntry {
                    seq: 20,
                    action: AclAction::Deny,
                    proto: None,
                    src: Prefix::DEFAULT,
                    dst: Prefix::DEFAULT,
                    dst_ports: None,
                },
            });
        } else {
            // Correct plans end with an explicit permit.
            cs.push(ChangeOp::AddAclEntry {
                device: edge.clone(),
                acl: "NO-TFTP".into(),
                entry: AclEntry {
                    seq: 20,
                    action: AclAction::Permit,
                    proto: None,
                    src: Prefix::DEFAULT,
                    dst: Prefix::DEFAULT,
                    dst_ports: None,
                },
            });
        }
        for iface in ["eth0", "eth1"] {
            cs.push(ChangeOp::BindAcl {
                device: edge.clone(),
                iface: iface.into(),
                dir: AclDir::In,
                acl: "NO-TFTP".into(),
            });
        }

        let report = rc.apply_change(&cs).expect("change applies");
        total_verify += report.total();
        print!(
            "step {:>2}: {edge:<14} verified in {:>9?} ({} affected ECs, {}/{} pairs)",
            step + 1,
            report.total(),
            report.affected_ecs,
            report.affected_pairs,
            report.total_pairs,
        );
        if report.newly_violated.is_empty() {
            println!("  ✓");
        } else {
            println!("  ✗ VIOLATIONS {:?}", report.newly_violated);
            let broken: Vec<&str> = reach
                .iter()
                .filter(|(_, id)| !rc.is_satisfied(*id))
                .map(|(e, _)| e.as_str())
                .collect();
            println!("         reachability broken toward: {broken:?}");

            // Fix it immediately: replace the bad entry with the permit.
            let mut fix = ChangeSet::new();
            fix.push(ChangeOp::RemoveAclEntry {
                device: edge.clone(),
                acl: "NO-TFTP".into(),
                seq: 20,
            });
            fix.push(ChangeOp::AddAclEntry {
                device: edge.clone(),
                acl: "NO-TFTP".into(),
                entry: AclEntry {
                    seq: 20,
                    action: AclAction::Permit,
                    proto: None,
                    src: Prefix::DEFAULT,
                    dst: Prefix::DEFAULT,
                    dst_ports: None,
                },
            });
            let repair = rc.apply_change(&fix).expect("fix applies");
            total_verify += repair.total();
            println!(
                "         fixed in {:?}; {} policies newly satisfied  ✓",
                repair.total(),
                repair.newly_satisfied.len()
            );
        }
    }

    // Final check: TFTP is actually blocked everywhere, reachability is
    // intact.
    let src = rc.node("pod00-edge00").unwrap();
    let dst = rc.node("pod03-edge01").unwrap();
    let tftp_isolated = rc.add_policy(Policy::Isolation {
        src,
        dst,
        class: PacketClass::DstPrefix(host_prefix(7)),
    });
    rc.recheck_policies();
    // Isolation for ALL traffic to that prefix is violated (non-TFTP
    // flows), which is what we want — the verifier proves traffic still
    // flows...
    assert!(!rc.is_satisfied(tftp_isolated));
    // ...and every reachability intent still holds.
    assert!(reach.iter().all(|(_, id)| rc.is_satisfied(*id)));
    println!(
        "\nPlan complete: {} steps verified incrementally in {total_verify:?} total; all {} \
         reachability intents hold.",
        edges.len(),
        reach.len()
    );
}
