//! Nontermination detection (paper §6): a misconfigured BGP preference
//! cycle never converges. Instead of hanging, the verifier reports the
//! divergence — and with recurring-state detection it does so as soon
//! as the oscillation pattern repeats, not when an iteration cap runs
//! out. The example then fixes the cycle and verifies the repair.
//!
//! Run with: `cargo run --example nonconvergence`

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::ring;
use realconfig::{ChangeSet, RealConfig};

fn main() {
    // The classic "bad gadget" shape: on a 3-ring where every AS
    // prefers routes heard on its counterclockwise side, best-path
    // choices chase each other forever.
    let mut configs = build_configs(&ring(3), ProtocolChoice::Bgp);
    for n in 0..3 {
        ChangeSet::local_pref(&format!("r{n:03}"), "eth1", 200)
            .apply(&mut configs)
            .expect("config edit applies");
    }

    println!("Verifying a BGP configuration with a preference cycle…");
    let start = std::time::Instant::now();
    match RealConfig::new(configs.clone()) {
        Err(realconfig::Error::Divergence(e)) => {
            println!("  ✗ rejected in {:?}: {e}", start.elapsed());
        }
        Ok(_) => {
            println!("  (this gadget happened to be stable under the tiebreaks)");
            return;
        }
        Err(e) => panic!("unexpected error: {e}"),
    }

    // Repair: make one AS stop preferring the cycle (drop its raised
    // local preference back to the default).
    println!("\nRepair: r000 stops preferring its counterclockwise neighbor…");
    ChangeSet::local_pref("r000", "eth1", 100).apply(&mut configs).expect("applies");
    let start = std::time::Instant::now();
    let (rc, report) = RealConfig::new(configs).expect("the repaired network converges");
    println!(
        "  ✓ converges in {:?}: {} FIB entries, {} reachable pairs",
        start.elapsed(),
        report.fib_entries,
        report.pairs
    );
    drop(rc);

    println!(
        "\nThe oscillation was caught by recurring-state detection (the §6 future work):\n\
         the engine watches the fixpoint's feedback stream and reports a revisited state\n\
         after ~3 repetition periods instead of running to the iteration cap."
    );
}
