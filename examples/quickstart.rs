//! Quickstart: verify a small hand-written network, change it, and
//! watch the incremental pipeline (paper Figure 1) stage by stage.
//!
//! Run with: `cargo run --example quickstart`

use realconfig::{ChangeSet, PacketClass, Policy, Prefix, RealConfig};

const R1: &str = "\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.252
 ip ospf cost 1
interface eth1
 ip address 10.0.1.1 255.255.255.252
 ip ospf cost 1
interface host0
 ip address 172.16.1.1 255.255.255.0
router ospf 1
 network 10.0.0.0/8 area 0
 network 172.16.0.0/12 area 0
";

const R2: &str = "\
hostname r2
interface eth0
 ip address 10.0.0.2 255.255.255.252
 ip ospf cost 1
interface eth1
 ip address 10.0.2.1 255.255.255.252
 ip ospf cost 1
router ospf 1
 network 10.0.0.0/8 area 0
 network 172.16.0.0/12 area 0
";

const R3: &str = "\
hostname r3
interface eth0
 ip address 10.0.1.2 255.255.255.252
 ip ospf cost 1
interface eth1
 ip address 10.0.2.2 255.255.255.252
 ip ospf cost 1
interface host0
 ip address 172.16.3.1 255.255.255.0
router ospf 1
 network 10.0.0.0/8 area 0
 network 172.16.0.0/12 area 0
";

fn main() {
    // A triangle: r1 — r2 — r3 — r1, with host networks at r1 and r3.
    println!("=== Initial full verification ===");
    let (mut rc, full) = RealConfig::from_texts([R1, R2, R3]).expect("configs verify");
    println!("  data plane generation : {:?} ({} records)", full.dp_gen, full.dp_records);
    println!("  FIB entries           : {}", full.fib_entries);
    println!("  model update          : {:?} ({} ECs)", full.model_update, full.ecs);
    println!("  policy check          : {:?} ({} reachable pairs)", full.policy_check, full.pairs);

    // Register intent: r1's traffic to r3's host network must arrive.
    let to_r3: Prefix = "172.16.3.0/24".parse().unwrap();
    let policy = rc
        .require_reachability("r1", "r3", to_r3)
        .expect("devices exist");
    let loopfree = rc.add_policy(Policy::LoopFree { class: PacketClass::All });
    rc.recheck_policies();
    println!("\n=== Policies registered ===");
    println!("  reachability r1→r3 ({to_r3}): {}", status(&rc, policy));
    println!("  loop-freedom              : {}", status(&rc, loopfree));

    // Change 1: fail the direct r1–r3 link. Traffic reroutes via r2.
    println!("\n=== Change 1: fail the r1–r3 link (paper's LinkFailure) ===");
    let report = rc.apply_change(&ChangeSet::link_failure("r1", "eth1")).expect("verifies");
    print_report(&report);
    println!("  reachability r1→r3: {} (rerouted via r2)", status(&rc, policy));
    assert!(rc.is_satisfied(policy));

    // Change 2: also fail the r1–r2 link — r1 is cut off; the checker
    // reports the newly violated policy.
    println!("\n=== Change 2: fail the r1–r2 link too ===");
    let report = rc.apply_change(&ChangeSet::link_failure("r1", "eth0")).expect("verifies");
    print_report(&report);
    println!("  reachability r1→r3: {}", status(&rc, policy));
    assert!(!rc.is_satisfied(policy));

    // Change 3: repair. The report calls out the newly satisfied policy
    // — the paper's "test whether a repair plan works".
    println!("\n=== Change 3: repair (re-enable r1 eth1) ===");
    let report = rc
        .apply_change(&ChangeSet {
            ops: vec![realconfig::ChangeOp::EnableInterface {
                device: "r1".into(),
                iface: "eth1".into(),
            }],
        })
        .expect("verifies");
    print_report(&report);
    println!("  reachability r1→r3: {}", status(&rc, policy));
    assert!(rc.is_satisfied(policy));

    // Bonus: the debugging capability the paper highlights for
    // simulation-based verifiers — full packet traces.
    println!("\n=== Packet trace: r1 → 172.16.3.9 (HTTP) ===");
    let trace = rc
        .trace_packet(
            "r1",
            realconfig::Packet {
                dst_ip: u32::from_be_bytes([172, 16, 3, 9]),
                proto: 6,
                dst_port: 80,
                ..Default::default()
            },
        )
        .expect("device exists");
    print!("{trace}");

    // Every stage reports into a shared telemetry registry; a snapshot
    // of it rides along in every report (and `--metrics` in the CLI).
    println!("\n=== Telemetry (cumulative since construction) ===");
    let m = rc.metrics_snapshot();
    let ops = m.counters.keys().filter(|k| k.starts_with("dataflow.work.")).count();
    println!("  dataflow : {} records over {} epochs, across {} operator kinds",
        m.counters["dataflow.records"], m.counters["dataflow.epochs"], ops);
    println!("  apkeep   : {} ECs, {} rules ({} rules applied, {} EC moves)",
        m.gauges["apkeep.ecs"], m.gauges["apkeep.rules"],
        m.counters["apkeep.rules_applied"], m.counters["apkeep.ec_moves"]);
    let inc = &m.histograms["policy.check_incremental_us"];
    println!("  policy   : {} ECs rechecked over {} incremental checks (p99 {}µs)",
        m.counters["policy.affected_ecs"], inc.count, inc.p99);

    println!("\nAll intent restored. Done.");
}

fn status(rc: &RealConfig, id: realconfig::PolicyId) -> &'static str {
    if rc.is_satisfied(id) {
        "SATISFIED"
    } else {
        "VIOLATED"
    }
}

fn print_report(r: &realconfig::ChangeReport) {
    println!(
        "  config lines +{}/−{}  →  {} fact changes",
        r.lines_inserted, r.lines_deleted, r.fact_changes
    );
    println!(
        "  stage 1 (dp gen)      : {:?}, rules +{}/−{}",
        r.dp_gen, r.rules_inserted, r.rules_removed
    );
    println!(
        "  stage 2 (model update): {:?}, {} affected ECs ({} moves, {} splits)",
        r.model_update, r.affected_ecs, r.ec_moves, r.ec_splits
    );
    println!(
        "  stage 3 (policy check): {:?}, {}/{} pairs affected, {} policies checked",
        r.policy_check, r.affected_pairs, r.total_pairs, r.policies_checked
    );
    if !r.newly_violated.is_empty() {
        println!("  newly VIOLATED policies: {:?}", r.newly_violated);
    }
    if !r.newly_satisfied.is_empty() {
        println!("  newly SATISFIED policies: {:?}", r.newly_satisfied);
    }
    println!("  total incremental verification: {:?}", r.total());
}
