//! Specification mining under link failures (paper §2, "Specification
//! mining"): to learn which reachability guarantees hold under every
//! single link failure (Config2Spec-style), the miner must compute one
//! data plane per failure scenario. Incremental data plane generation
//! makes that sweep cheap: each scenario is fail-one-link /
//! restore-one-link, and only the affected routes are recomputed.
//!
//! Run with: `cargo run --release --example spec_mining`

use std::collections::BTreeSet;
use std::time::Instant;

use rc_netcfg::gen::{build_configs, ProtocolChoice};
use rc_netcfg::topology::{fat_tree, host_prefix};
use realconfig::{full_dataplane_baseline, full_dataplane_realconfig, ChangeOp, ChangeSet, RealConfig};

fn main() {
    let k = 6;
    let topo = fat_tree(k);
    let configs = build_configs(&topo, ProtocolChoice::Ospf);
    println!(
        "Mining failure-tolerant reachability on a k={k} fat tree ({} devices, {} links, OSPF).",
        topo.num_devices(),
        topo.num_links()
    );

    let edges: Vec<String> = configs.keys().filter(|d| d.contains("edge")).cloned().collect();
    let (mut rc, full) = RealConfig::new(configs.clone()).expect("verifies");
    println!("Full data plane generation: {:?}\n", full.dp_gen);

    // The candidate specification space: edge-to-edge reachability.
    let mut candidates: BTreeSet<(String, String)> = BTreeSet::new();
    for s in &edges {
        for d in &edges {
            if s != d {
                candidates.insert((s.clone(), d.clone()));
            }
        }
    }
    let holds = |rc: &RealConfig, s: &str, d: &str, di: usize| -> bool {
        let (Some(sn), Some(dn)) = (rc.node(s), rc.node(d)) else { return false };
        let _ = host_prefix(di as u32);
        rc_policy_pair(rc, sn, dn)
    };
    // Base network: all candidates should hold.
    let edge_index = |d: &str| edges.iter().position(|e| e == d).unwrap();
    candidates.retain(|(s, d)| holds(&rc, s, d, edge_index(d)));
    println!("{} candidate reachability specs hold in the healthy network.", candidates.len());

    // Sweep every single link failure incrementally.
    let mut incremental_time = std::time::Duration::ZERO;
    let mut scenarios = 0usize;
    let t_sweep = Instant::now();
    for link in &topo.links {
        let (dev, iface) = (&link.a.device, &link.a.iface);
        let fail = ChangeSet::link_failure(dev, iface);
        let report = rc.apply_change(&fail).expect("failure verifies");
        incremental_time += report.dp_gen;
        scenarios += 1;

        // Prune candidates that break under this failure.
        candidates.retain(|(s, d)| holds(&rc, s, d, edge_index(d)));

        // Restore.
        let restore = ChangeSet {
            ops: vec![ChangeOp::EnableInterface { device: dev.clone(), iface: iface.clone() }],
        };
        let report = rc.apply_change(&restore).expect("restore verifies");
        incremental_time += report.dp_gen;
        rc.compact();
    }
    let sweep_wall = t_sweep.elapsed();

    println!(
        "Swept {scenarios} single-link failures in {sweep_wall:?} \
         (incremental data plane generation: {incremental_time:?}).",
    );
    println!(
        "{} specs survive every single link failure (the mined 1-failure-tolerant spec).",
        candidates.len()
    );

    // What would the same sweep cost with non-incremental generation?
    // (The paper's §5 comparison: same general-purpose engine, from
    // scratch per scenario.) Measure a few scenarios and extrapolate.
    let sample = 5.min(topo.links.len());
    let mut scratch_general = std::time::Duration::ZERO;
    let mut scratch_custom = std::time::Duration::ZERO;
    for link in topo.links.iter().take(sample) {
        let mut failed = configs.clone();
        ChangeSet::link_failure(&link.a.device, &link.a.iface).apply(&mut failed).unwrap();
        let (d, _) = full_dataplane_realconfig(&failed).expect("converges");
        scratch_general += d;
        let (d, _) = full_dataplane_baseline(&failed).expect("converges");
        scratch_custom += d;
    }
    let est_general = scratch_general * (scenarios as u32) / (sample as u32);
    let est_custom = scratch_custom * (scenarios as u32) / (sample as u32);
    println!(
        "\nNon-incremental sweep estimates ({sample} scenarios measured, extrapolated):\n\
         \x20 general-purpose engine from scratch: ~{est_general:?}\n\
         \x20 custom-algorithm baseline          : ~{est_custom:?}",
    );
    let speedup = est_general.as_secs_f64() / incremental_time.as_secs_f64().max(1e-9);
    println!("Incremental vs non-incremental (same engine): ~{speedup:.1}× faster");
}

/// Does any EC currently deliver from `s` to `d`?
fn rc_policy_pair(rc: &RealConfig, s: realconfig::NodeId, d: realconfig::NodeId) -> bool {
    rc.pair_reachable(s, d)
}
